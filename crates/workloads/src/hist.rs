//! Latency histograms.
//!
//! Table 3 and Figure 13 of the paper report mean and 99th-percentile
//! latencies for read and write transactions. [`Histogram`] is a fixed-size
//! log-bucketed histogram over microsecond latencies: cheap to update on the
//! benchmark fast path, mergeable across workers, and accurate to a few
//! percent at the quantiles the paper reports.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Number of log-spaced buckets: covers 1 µs .. ~100 s with ~5% resolution.
const BUCKETS: usize = 512;
/// Bucket width in log space: each bucket spans a factor of 2^(1/16) ≈ 4.4%.
const BUCKETS_PER_OCTAVE: f64 = 16.0;

/// A mergeable log-bucketed latency histogram (values in microseconds).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: u128,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKETS], total: 0, sum_us: 0, max_us: 0 }
    }

    fn bucket_for(us: u64) -> usize {
        if us <= 1 {
            return 0;
        }
        let idx = ((us as f64).log2() * BUCKETS_PER_OCTAVE).floor() as usize;
        idx.min(BUCKETS - 1)
    }

    /// Representative (upper-bound) value of a bucket, in microseconds.
    fn bucket_value(idx: usize) -> u64 {
        2f64.powf((idx + 1) as f64 / BUCKETS_PER_OCTAVE).ceil() as u64
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.counts[Self::bucket_for(us)] += 1;
        self.total += 1;
        self.sum_us += us as u128;
        self.max_us = self.max_us.max(us);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (e.g. 0.99) in microseconds, 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(idx).min(self.max_us.max(1));
            }
        }
        self.max_us
    }

    /// Maximum observed latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Produces the summary the paper's tables report (p50/p95 added for the
    /// service latency-vs-throughput curves).
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.total,
            mean_us: self.mean_us(),
            p50_us: self.quantile_us(0.50) as f64,
            p95_us: self.quantile_us(0.95) as f64,
            p99_us: self.quantile_us(0.99) as f64,
            max_us: self.max_us as f64,
        }
    }
}

/// Mean / p50 / p95 / p99 / max latency summary, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Median latency (µs).
    pub p50_us: f64,
    /// 95th-percentile latency (µs).
    pub p95_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_us: f64,
    /// Maximum latency (µs).
    pub max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.summary().count, 0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(20));
        h.record(Duration::from_micros(30));
        assert_eq!(h.count(), 3);
        assert!((h.mean_us() - 20.0).abs() < 1e-9);
        assert_eq!(h.max_us(), 30);
    }

    #[test]
    fn p99_reflects_tail() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(20)); // the 1% tail: a stashed read
        let p99 = h.quantile_us(0.99) as f64;
        assert!(p99 <= 150.0, "p99 {p99} should still be in the body");
        let p999 = h.quantile_us(0.9999) as f64;
        assert!(p999 >= 15_000.0, "p99.99 {p999} should capture the 20ms stash");
    }

    #[test]
    fn quantile_accuracy_within_bucket_resolution() {
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_us(0.5) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.06, "p50={p50}");
        let p99 = h.quantile_us(0.99) as f64;
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.06, "p99={p99}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_micros(5));
        b.record(Duration::from_micros(500));
        b.record(Duration::from_micros(50));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_us(), 500);
        assert!((a.mean_us() - (5.0 + 500.0 + 50.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn summary_roundtrip() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(100));
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert!((s.mean_us - 100.0).abs() < 1e-9);
        assert!(s.p99_us >= 90.0);
        assert!(s.p50_us >= 90.0 && s.p50_us <= 110.0);
    }

    #[test]
    fn summary_quantiles_are_ordered() {
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record(Duration::from_micros(us));
        }
        let s = h.summary();
        assert!(s.p50_us <= s.p95_us, "p50 {} > p95 {}", s.p50_us, s.p95_us);
        assert!(s.p95_us <= s.p99_us, "p95 {} > p99 {}", s.p95_us, s.p99_us);
        assert!(s.p99_us <= s.max_us, "p99 {} > max {}", s.p99_us, s.max_us);
        assert!((s.p95_us - 9_500.0).abs() / 9_500.0 < 0.06, "p95={}", s.p95_us);
    }
}
