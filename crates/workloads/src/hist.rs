//! Latency histograms — re-exported from [`doppel_telemetry`].
//!
//! Table 3 and Figure 13 of the paper report mean and 99th-percentile
//! latencies for read and write transactions. The benchmark harness used to
//! carry its own log-bucketed histogram here; the telemetry crate's
//! [`Histogram`] is the same idea with a tighter contract (fixed 2 KiB
//! footprint, ~1.6% worst-case quantile error, nanosecond resolution floor
//! of 256 ns, exact mean and maximum), and it is what the server ships over
//! the wire — so the harness records into the identical type and the
//! percentile code lives in exactly one place.
//!
//! Values beyond the bucket range (~268 ms) clamp into the overflow bucket
//! while the exact maximum is tracked separately; quantiles that land there
//! report the true maximum. Benchmark latencies sit far below that bound.

pub use doppel_telemetry::{Histogram, LatencySummary};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // The histogram's own unit tests live in `doppel_telemetry::hist`; these
    // guard the API surface the benchmark drivers depend on through this
    // re-export.

    #[test]
    fn driver_facing_surface_holds() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(20));
        h.record(Duration::from_micros(30));
        assert_eq!(h.count(), 3);
        assert!((h.mean_us() - 20.0).abs() < 1e-9);
        assert_eq!(h.max_us(), 30);

        let mut other = Histogram::new();
        other.record(Duration::from_micros(500));
        h.merge(&other);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_us(), 500);

        let s = h.summary();
        assert_eq!(s.count, 4);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us && s.p99_us <= s.max_us);
    }

    #[test]
    fn p99_reflects_tail() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(20)); // the 1% tail: a stashed read
        let p99 = h.quantile_us(0.99) as f64;
        assert!(p99 <= 150.0, "p99 {p99} should still be in the body");
        let p999 = h.quantile_us(0.9999) as f64;
        assert!(p999 >= 15_000.0, "p99.99 {p999} should capture the 20ms stash");
    }
}
