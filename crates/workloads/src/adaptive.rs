//! The ADAPTIVE benchmark: a migrating hot set of auction items.
//!
//! Every transaction increments the bid-count aggregate of one auction item
//! (the `kv.add` procedure against [`Table::RubisNumBids`]). A small **hot
//! set** of items absorbs most of the traffic, and the identity of the hot
//! set rotates on a fixed period — popular auctions close and new ones heat
//! up. A static split labelling (the old `--hint-items` flag) is correct for
//! at most one rotation epoch; the workload exists to measure how quickly the
//! adaptive contention controller promotes the new hot items and demotes the
//! cooled ones, against the **oracle** run where every epoch's hot set is
//! labelled split up front.
//!
//! Rotation is deterministic ([`AdaptiveWorkload::hot_item`]): the oracle
//! labels and the generator's traffic are derived from the same function, so
//! the two runs of the experiment are exactly comparable.

use crate::driver::{GeneratedTxn, TxnGenerator, Workload};
use doppel_common::{Args, Engine, Key, OpKind, ProcId, ProcRegistry, Table, Value};
use doppel_service::procs::kv_registry;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The migrating-hot-set auction workload.
pub struct AdaptiveWorkload {
    /// Total number of auction items.
    pub items: u64,
    /// How many items are simultaneously hot.
    pub hot_items: usize,
    /// Fraction of transactions hitting the hot set, in `[0, 1]`.
    pub hot_fraction: f64,
    /// How often the hot set rotates (`None` = stationary).
    pub rotation: Option<Duration>,
    registry: Arc<ProcRegistry>,
    kv_add: ProcId,
}

impl AdaptiveWorkload {
    /// Builds the workload: `hot_items` of `items` absorb `hot_fraction` of
    /// the increments.
    pub fn new(items: u64, hot_items: usize, hot_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&hot_fraction), "hot_fraction must be in [0,1]");
        assert!(
            (hot_items as u64) < items,
            "hot set must leave room for cold items"
        );
        let registry = kv_registry();
        let kv_add = registry.lookup("kv.add").expect("kv pack registers kv.add");
        AdaptiveWorkload { items, hot_items, hot_fraction, rotation: None, registry, kv_add }
    }

    /// Enables hot-set rotation every `period`.
    pub fn with_rotation(mut self, period: Duration) -> Self {
        self.rotation = Some(period);
        self
    }

    /// The bid-count aggregate key of auction item `item`.
    pub fn item_key(item: u64) -> Key {
        Key::new(Table::RubisNumBids, item, 0)
    }

    /// The item filling hot-set slot `slot` during rotation epoch `epoch`.
    /// Deterministic, so the oracle labelling and the generated traffic agree
    /// exactly; the primes spread successive epochs' hot sets far apart.
    pub fn hot_item(&self, epoch: u64, slot: usize) -> u64 {
        (epoch.wrapping_mul(7_919).wrapping_add(slot as u64 * 104_729)) % self.items
    }

    /// The full hot set of rotation epoch `epoch`, as engine keys.
    pub fn hot_set(&self, epoch: u64) -> Vec<Key> {
        (0..self.hot_items).map(|slot| Self::item_key(self.hot_item(epoch, slot))).collect()
    }

    /// The oracle split labelling for a run spanning rotation epochs
    /// `0..epochs`: every item that will ever be hot, labelled for the
    /// splittable increment up front. This is what the adaptive run has to
    /// match without being told anything.
    pub fn oracle_labels(&self, epochs: u64) -> Vec<(Key, OpKind)> {
        let mut labels: Vec<(Key, OpKind)> = Vec::new();
        for epoch in 0..epochs.max(1) {
            for key in self.hot_set(epoch) {
                if !labels.iter().any(|(k, _)| *k == key) {
                    labels.push((key, OpKind::Add));
                }
            }
        }
        labels
    }

    /// How many rotation epochs a run of `duration` spans.
    pub fn epochs_in(&self, duration: Duration) -> u64 {
        match self.rotation {
            Some(period) => (duration.as_nanos() / period.as_nanos().max(1)) as u64 + 1,
            None => 1,
        }
    }
}

impl Workload for AdaptiveWorkload {
    fn name(&self) -> String {
        match self.rotation {
            Some(period) => format!(
                "ADAPTIVE(hot={}x{:.0}%, rotate={:.1}s)",
                self.hot_items,
                self.hot_fraction * 100.0,
                period.as_secs_f64()
            ),
            None => format!("ADAPTIVE(hot={}x{:.0}%)", self.hot_items, self.hot_fraction * 100.0),
        }
    }

    fn load(&self, engine: &dyn Engine) {
        for item in 0..self.items {
            engine.load(Self::item_key(item), Value::Int(0));
        }
    }

    fn generator(&self, core: usize, seed: u64) -> Box<dyn TxnGenerator> {
        Box::new(AdaptiveGenerator {
            items: self.items,
            hot_items: self.hot_items,
            hot_fraction: self.hot_fraction,
            rotation: self.rotation,
            started: Instant::now(),
            rng: SmallRng::seed_from_u64(seed.wrapping_add(core as u64)),
            registry: Arc::clone(&self.registry),
            kv_add: self.kv_add,
        })
    }

    fn proc_registry(&self) -> Option<Arc<ProcRegistry>> {
        Some(Arc::clone(&self.registry))
    }
}

struct AdaptiveGenerator {
    items: u64,
    hot_items: usize,
    hot_fraction: f64,
    rotation: Option<Duration>,
    started: Instant,
    rng: SmallRng,
    registry: Arc<ProcRegistry>,
    kv_add: ProcId,
}

impl AdaptiveGenerator {
    fn epoch(&self) -> u64 {
        match self.rotation {
            None => 0,
            Some(period) => (self.started.elapsed().as_nanos() / period.as_nanos().max(1)) as u64,
        }
    }

    fn hot_item(&self, epoch: u64, slot: usize) -> u64 {
        (epoch.wrapping_mul(7_919).wrapping_add(slot as u64 * 104_729)) % self.items
    }
}

impl TxnGenerator for AdaptiveGenerator {
    fn next_txn(&mut self) -> GeneratedTxn {
        let epoch = self.epoch();
        let item = if self.rng.gen::<f64>() < self.hot_fraction {
            let slot = self.rng.gen_range(0..self.hot_items.max(1));
            self.hot_item(epoch, slot)
        } else {
            // A uniformly chosen item outside the current hot set.
            loop {
                let item = self.rng.gen_range(0..self.items);
                if !(0..self.hot_items).any(|slot| self.hot_item(epoch, slot) == item) {
                    break item;
                }
            }
        };
        GeneratedTxn {
            proc: self.registry.call(
                self.kv_add,
                Args::new().key(AdaptiveWorkload::item_key(item)).int(1),
            ),
            is_write: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_labels_cover_every_epoch_without_duplicates() {
        let w = AdaptiveWorkload::new(1_000, 4, 0.9).with_rotation(Duration::from_millis(100));
        let labels = w.oracle_labels(5);
        for epoch in 0..5 {
            for key in w.hot_set(epoch) {
                assert!(labels.iter().any(|(k, _)| *k == key), "epoch {epoch} key missing");
            }
        }
        let mut keys: Vec<Key> = labels.iter().map(|(k, _)| *k).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), labels.len(), "labels must be duplicate-free");
        assert_eq!(w.epochs_in(Duration::from_millis(450)), 5);
    }

    #[test]
    fn traffic_concentrates_on_the_current_hot_set() {
        let w = AdaptiveWorkload::new(256, 2, 0.8);
        let engine = doppel_occ::OccEngine::new(1, 64);
        w.load(&engine);
        let mut gen = w.generator(0, 7);
        let mut handle = engine.handle(0);
        let n = 10_000;
        for _ in 0..n {
            assert!(handle.execute(gen.next_txn().proc).is_committed());
        }
        let hot: i64 = w
            .hot_set(0)
            .iter()
            .map(|k| engine.global_get(*k).unwrap().as_int().unwrap())
            .sum();
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.03, "hot share was {frac}");
    }

    #[test]
    fn rotation_migrates_the_hot_set() {
        let w = AdaptiveWorkload::new(10_000, 4, 1.0).with_rotation(Duration::from_millis(50));
        let first = w.hot_set(0);
        let second = w.hot_set(1);
        assert!(first.iter().all(|k| !second.contains(k)), "epochs must not overlap here");
        assert!(w.name().contains("rotate"));
    }
}
