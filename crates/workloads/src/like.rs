//! The LIKE social-network benchmark (§7, §8.5–§8.7).
//!
//! "The LIKE application simulates a set of users 'liking' profile pages.
//! Each update transaction writes a record inserting the user's like of a
//! page, and then increments a per-page sum of likes. Each read transaction
//! reads the user's last like and reads the total number of likes for some
//! page." The database has 1 M users and 1 M pages; the user is chosen
//! uniformly and the page from a Zipfian distribution, so the per-page like
//! counters of popular pages are contended while the per-user rows are not.

use crate::driver::{GeneratedTxn, TxnGenerator, Workload};
use crate::zipf::ZipfSampler;
use doppel_common::{Engine, Key, Procedure, Table, Tx, TxError, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Key of a user's "last like" row.
pub fn user_key(user: u64) -> Key {
    Key::new(Table::User, user, 0)
}

/// Key of a page's like counter.
pub fn page_key(page: u64) -> Key {
    Key::new(Table::Page, page, 0)
}

/// Key of the individual like row a write transaction inserts.
pub fn like_row_key(user: u64, seq: u32) -> Key {
    Key::new(Table::Like, user, seq)
}

/// Write transaction: user likes a page.
pub struct LikeWrite {
    /// The liking user.
    pub user: u64,
    /// The liked page.
    pub page: u64,
    /// Per-user sequence number for the inserted like row.
    pub seq: u32,
}

impl Procedure for LikeWrite {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        // Insert the like row (never contended: keyed by user).
        tx.put(
            like_row_key(self.user, self.seq),
            Value::Int(self.page as i64),
        )?;
        // Update the user's "last like" row (rarely contended).
        tx.put(user_key(self.user), Value::Int(self.page as i64))?;
        // Increment the page's like counter (contended for popular pages, and
        // commutative — exactly what Doppel splits).
        tx.add(page_key(self.page), 1)
    }

    fn name(&self) -> &'static str {
        "LIKE-write"
    }
}

/// Read transaction: read the user's last like and a page's like count.
pub struct LikeRead {
    /// The user whose last like is read.
    pub user: u64,
    /// The page whose like count is read.
    pub page: u64,
}

impl Procedure for LikeRead {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        let _last_like = tx.get(user_key(self.user))?;
        let _count = tx.get_int(page_key(self.page))?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "LIKE-read"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// The LIKE workload: a mix of read and write transactions over users and
/// pages.
pub struct LikeWorkload {
    /// Number of users (1 M in the paper).
    pub users: u64,
    /// Number of pages (1 M in the paper).
    pub pages: u64,
    /// Fraction of transactions that write, in `[0, 1]` (0.5 in Table 3).
    pub write_fraction: f64,
    /// Zipf parameter for page popularity (`0.0` = the paper's "uniform"
    /// workload, `1.4` = the paper's "skewed" workload).
    pub alpha: f64,
    sampler: Arc<ZipfSampler>,
}

impl LikeWorkload {
    /// Builds a LIKE workload.
    pub fn new(users: u64, pages: u64, write_fraction: f64, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&write_fraction), "write_fraction must be in [0,1]");
        LikeWorkload {
            users,
            pages,
            write_fraction,
            alpha,
            sampler: Arc::new(ZipfSampler::new(pages, alpha)),
        }
    }

    /// The paper's uniform LIKE workload (50% writes, uniform pages).
    pub fn uniform(users: u64, pages: u64) -> Self {
        LikeWorkload::new(users, pages, 0.5, 0.0)
    }

    /// The paper's skewed LIKE workload (50% writes, α = 1.4).
    pub fn skewed(users: u64, pages: u64) -> Self {
        LikeWorkload::new(users, pages, 0.5, 1.4)
    }

    /// The paper's skewed write-heavy LIKE workload (90% writes, α = 1.4).
    pub fn skewed_write_heavy(users: u64, pages: u64) -> Self {
        LikeWorkload::new(users, pages, 0.9, 1.4)
    }
}

impl Workload for LikeWorkload {
    fn name(&self) -> String {
        format!("LIKE(writes={:.0}%, alpha={:.2})", self.write_fraction * 100.0, self.alpha)
    }

    fn load(&self, engine: &dyn Engine) {
        for u in 0..self.users {
            engine.load(user_key(u), Value::Int(-1));
        }
        for p in 0..self.pages {
            engine.load(page_key(p), Value::Int(0));
        }
    }

    fn generator(&self, core: usize, seed: u64) -> Box<dyn TxnGenerator> {
        Box::new(LikeGenerator {
            users: self.users,
            write_fraction: self.write_fraction,
            sampler: Arc::clone(&self.sampler),
            rng: SmallRng::seed_from_u64(seed.wrapping_add(core as u64).wrapping_mul(0x9E3779B9)),
            seq: 0,
            core: core as u32,
        })
    }
}

struct LikeGenerator {
    users: u64,
    write_fraction: f64,
    sampler: Arc<ZipfSampler>,
    rng: SmallRng,
    seq: u32,
    core: u32,
}

impl TxnGenerator for LikeGenerator {
    fn next_txn(&mut self) -> GeneratedTxn {
        let user = self.rng.gen_range(0..self.users);
        let page = self.sampler.sample(&mut self.rng);
        if self.rng.gen::<f64>() < self.write_fraction {
            self.seq = self.seq.wrapping_add(1);
            // Make the like-row key unique per (core, seq) so concurrent
            // workers never insert the same row.
            let seq = (self.core << 24) | (self.seq & 0x00FF_FFFF);
            GeneratedTxn { proc: Arc::new(LikeWrite { user, page, seq }), is_write: true }
        } else {
            GeneratedTxn { proc: Arc::new(LikeRead { user, page }), is_write: false }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{BenchOptions, Driver};
    use std::time::Duration;

    #[test]
    fn like_write_updates_counter_and_rows() {
        let engine = doppel_occ::OccEngine::new(1, 64);
        let w = LikeWorkload::uniform(16, 16);
        w.load(&engine);
        let mut h = engine.handle(0);
        let txn = Arc::new(LikeWrite { user: 3, page: 7, seq: 1 });
        assert!(h.execute(txn).is_committed());
        assert_eq!(engine.global_get(page_key(7)), Some(Value::Int(1)));
        assert_eq!(engine.global_get(user_key(3)), Some(Value::Int(7)));
        assert_eq!(engine.global_get(like_row_key(3, 1)), Some(Value::Int(7)));
    }

    #[test]
    fn like_read_is_read_only() {
        let r = LikeRead { user: 1, page: 1 };
        assert!(r.is_read_only());
        let w = LikeWrite { user: 1, page: 1, seq: 0 };
        use doppel_common::Procedure;
        assert!(!w.is_read_only());
    }

    #[test]
    fn write_fraction_is_respected() {
        let w = LikeWorkload::new(100, 100, 0.25, 0.0);
        let mut gen = w.generator(0, 42);
        let n = 10_000;
        let writes = (0..n).filter(|_| gen.next_txn().is_write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn mix_presets_match_paper() {
        assert_eq!(LikeWorkload::uniform(10, 10).alpha, 0.0);
        assert_eq!(LikeWorkload::skewed(10, 10).alpha, 1.4);
        assert_eq!(LikeWorkload::skewed_write_heavy(10, 10).write_fraction, 0.9);
    }

    #[test]
    fn full_run_page_counts_match_committed_writes() {
        let engine = doppel_occ::OccEngine::new(2, 128);
        let w = LikeWorkload::new(64, 64, 1.0, 1.4);
        let result = Driver::run(&engine, &w, &BenchOptions::new(2, Duration::from_millis(80)));
        let mut total_likes = 0i64;
        for p in 0..64 {
            total_likes += engine.global_get(page_key(p)).unwrap().as_int().unwrap();
        }
        assert_eq!(total_likes as u64, result.committed);
        assert_eq!(result.write_latency.count, result.committed);
    }

    #[test]
    fn doppel_splits_hot_page_under_contention() {
        // Multi-worker Doppel run on a tiny, highly skewed LIKE workload: the
        // hottest page counter should end up split, and the final counts must
        // still equal the number of committed writes.
        let cfg = doppel_common::DoppelConfig {
            workers: 2,
            phase_len: Duration::from_millis(4),
            split_min_conflicts: 2,
            split_conflict_fraction: 0.0,
            unsplit_write_fraction: 0.0,
            ..Default::default()
        };
        let engine = doppel_db::DoppelDb::start(cfg);
        let w = LikeWorkload::new(32, 8, 1.0, 1.8);
        let result = Driver::run(&engine, &w, &BenchOptions::new(2, Duration::from_millis(200)));
        let mut total_likes = 0i64;
        for p in 0..8 {
            total_likes += engine.global_get(page_key(p)).unwrap().as_int().unwrap();
        }
        assert_eq!(total_likes as u64, result.committed);
    }

    #[test]
    #[should_panic(expected = "write_fraction")]
    fn invalid_write_fraction_panics() {
        let _ = LikeWorkload::new(10, 10, 2.0, 1.0);
    }
}
