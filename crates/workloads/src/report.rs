//! Result tables for the benchmark binaries.
//!
//! Every experiment binary regenerates one table or figure of the paper; this
//! module provides a small typed table that renders as aligned plain text
//! (what the binaries print) and as JSON (what `EXPERIMENTS.md` tooling and
//! tests consume).

use crate::hist::LatencySummary;
use doppel_common::{ProcStatsSnapshot, StatsSnapshot};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Column headers for the write-ahead-log counters of a run, matching
/// [`wal_stat_cells`]. Experiment binaries that run engines in durable mode
/// splice these into their tables so logging cost and recovery volume are
/// visible next to throughput.
pub const WAL_STAT_COLUMNS: &[&str] =
    &["log_recs", "log_KB", "fsyncs", "gc_batches", "recovered"];

/// The WAL counters of `stats` as one cell per [`WAL_STAT_COLUMNS`] entry.
pub fn wal_stat_cells(stats: &StatsSnapshot) -> Vec<Cell> {
    vec![
        Cell::Int(stats.log_records as i64),
        Cell::Float(stats.log_bytes as f64 / 1024.0),
        Cell::Int(stats.fsyncs as i64),
        Cell::Int(stats.group_commit_batches as i64),
        Cell::Int(stats.recovered_txns as i64),
    ]
}

/// Column headers for the transaction-service queue counters of a run,
/// matching [`service_stat_cells`]. Experiment binaries that drive engines
/// through the service splice these in next to [`WAL_STAT_COLUMNS`] so queue
/// pressure is visible alongside logging cost.
pub const SERVICE_STAT_COLUMNS: &[&str] =
    &["q_depth", "enqueued", "busy_rej", "deq_batches", "avg_batch"];

/// The service queue counters of `stats` as one cell per
/// [`SERVICE_STAT_COLUMNS`] entry.
pub fn service_stat_cells(stats: &StatsSnapshot) -> Vec<Cell> {
    let avg_batch = if stats.queue_batches == 0 {
        0.0
    } else {
        stats.queue_enqueued as f64 / stats.queue_batches as f64
    };
    vec![
        Cell::Int(stats.queue_depth as i64),
        Cell::Int(stats.queue_enqueued as i64),
        Cell::Int(stats.queue_busy_rejections as i64),
        Cell::Int(stats.queue_batches as i64),
        Cell::Float(avg_batch),
    ]
}

/// Column headers for the allocation counters of a run, matching
/// [`alloc_stat_cells`]. Allocation traffic is a first-class metric: every
/// experiment binary splices these in so hot-path allocation regressions are
/// as visible as throughput regressions. The counters read zero when the
/// counting allocator is not installed (see `doppel_common::alloc`).
pub const ALLOC_STAT_COLUMNS: &[&str] = &["allocs", "alloc_KB", "allocs/txn"];

/// The allocation counters of `stats` as one cell per
/// [`ALLOC_STAT_COLUMNS`] entry.
pub fn alloc_stat_cells(stats: &StatsSnapshot) -> Vec<Cell> {
    vec![
        Cell::Int(stats.alloc_count as i64),
        Cell::Float(stats.alloc_bytes as f64 / 1024.0),
        match stats.allocs_per_commit() {
            Some(x) => Cell::Float(x),
            None => Cell::Empty,
        },
    ]
}

/// Column headers for a latency distribution, matching [`latency_cells`].
/// The service-facing experiments report the full p50/p95/p99 tail next to
/// throughput; splice these in instead of hand-picking quantile columns.
pub const LATENCY_COLUMNS: &[&str] = &["p50", "p95", "p99"];

/// The p50/p95/p99 quantiles of `latency` as one cell per
/// [`LATENCY_COLUMNS`] entry.
pub fn latency_cells(latency: &LatencySummary) -> Vec<Cell> {
    vec![
        Cell::Micros(latency.p50_us),
        Cell::Micros(latency.p95_us),
        Cell::Micros(latency.p99_us),
    ]
}

/// Column headers for a per-procedure statistics table, matching
/// [`proc_stat_row`].
pub const PROC_STAT_COLUMNS: &[&str] =
    &["procedure", "invocations", "commits", "aborts", "deferrals"];

/// One row of a per-procedure statistics table.
pub fn proc_stat_row(stats: &ProcStatsSnapshot) -> Vec<Cell> {
    vec![
        Cell::Text(stats.name.clone()),
        Cell::Int(stats.invocations as i64),
        Cell::Int(stats.commits as i64),
        Cell::Int(stats.aborts as i64),
        Cell::Int(stats.deferrals as i64),
    ]
}

/// Builds the per-procedure statistics table for a run (skipping procedures
/// that were never invoked).
pub fn proc_stats_table(title: impl Into<String>, stats: &[ProcStatsSnapshot]) -> Table {
    let mut table = Table::new(title, PROC_STAT_COLUMNS);
    for proc in stats {
        if proc.invocations > 0 {
            table.push_row(proc_stat_row(proc));
        }
    }
    table
}

/// One table cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// Free-form text (row labels, engine names).
    Text(String),
    /// An integer quantity (counts).
    Int(i64),
    /// A floating-point quantity rendered with 3 significant decimals.
    Float(f64),
    /// A throughput rendered in millions of transactions per second.
    Mtps(f64),
    /// A latency in microseconds.
    Micros(f64),
    /// An empty cell.
    Empty,
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => write!(f, "{s}"),
            Cell::Int(n) => write!(f, "{n}"),
            Cell::Float(x) => write!(f, "{x:.3}"),
            Cell::Mtps(x) => write!(f, "{:.3}M", x / 1e6),
            Cell::Micros(x) => write!(f, "{x:.0}us"),
            Cell::Empty => Ok(()),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(x: f64) -> Self {
        Cell::Float(x)
    }
}

impl From<i64> for Cell {
    fn from(n: i64) -> Self {
        Cell::Int(n)
    }
}

impl From<u64> for Cell {
    fn from(n: u64) -> Self {
        Cell::Int(n as i64)
    }
}

/// A titled table with a header row and data rows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. "Figure 8: INCR1 throughput vs % hot-key writes").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each row should have `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of columns.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(row.len(), self.columns.len(), "row width must match column count");
        self.rows.push(row);
    }

    /// Serialises the table to JSON (pretty-printed).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serialisation cannot fail")
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered_rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|c| c.to_string()).collect())
            .collect();
        for row in &rendered_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &rendered_rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_cells_match_columns() {
        let stats = StatsSnapshot {
            queue_depth: 3,
            queue_enqueued: 100,
            queue_busy_rejections: 7,
            queue_batches: 25,
            ..Default::default()
        };
        let cells = service_stat_cells(&stats);
        assert_eq!(cells.len(), SERVICE_STAT_COLUMNS.len());
        assert_eq!(cells[1], Cell::Int(100));
        assert_eq!(cells[2], Cell::Int(7));
        assert_eq!(cells[4], Cell::Float(4.0), "mean batch = enqueued / batches");
        // No batches → no division by zero.
        let empty = service_stat_cells(&StatsSnapshot::default());
        assert_eq!(empty[4], Cell::Float(0.0));
    }

    #[test]
    fn alloc_cells_match_columns() {
        let stats = StatsSnapshot { commits: 10, ..Default::default() }
            .with_alloc_counters(30, 2048);
        let cells = alloc_stat_cells(&stats);
        assert_eq!(cells.len(), ALLOC_STAT_COLUMNS.len());
        assert_eq!(cells[0], Cell::Int(30));
        assert_eq!(cells[1], Cell::Float(2.0));
        assert_eq!(cells[2], Cell::Float(3.0));
        // Idle runs leave the per-txn cell empty instead of dividing by zero.
        assert_eq!(alloc_stat_cells(&StatsSnapshot::default())[2], Cell::Empty);
    }

    #[test]
    fn latency_cells_match_columns() {
        let latency = LatencySummary {
            count: 10,
            mean_us: 40.0,
            p50_us: 30.0,
            p95_us: 90.0,
            p99_us: 120.0,
            max_us: 200.0,
        };
        let cells = latency_cells(&latency);
        assert_eq!(cells.len(), LATENCY_COLUMNS.len());
        assert_eq!(cells[0], Cell::Micros(30.0));
        assert_eq!(cells[2], Cell::Micros(120.0));
    }

    #[test]
    fn proc_stats_table_skips_uninvoked_procedures() {
        let stats = vec![
            ProcStatsSnapshot {
                name: "rubis.store_bid".into(),
                invocations: 5,
                commits: 4,
                aborts: 1,
                deferrals: 2,
            },
            ProcStatsSnapshot { name: "rubis.about_me".into(), ..Default::default() },
        ];
        let table = proc_stats_table("procs", &stats);
        assert_eq!(table.columns.len(), PROC_STAT_COLUMNS.len());
        assert_eq!(table.rows.len(), 1, "uninvoked procedures are skipped");
        assert_eq!(table.rows[0][0], Cell::Text("rubis.store_bid".into()));
        assert_eq!(table.rows[0][4], Cell::Int(2));
    }

    #[test]
    fn cell_rendering() {
        assert_eq!(Cell::Text("x".into()).to_string(), "x");
        assert_eq!(Cell::Int(5).to_string(), "5");
        assert_eq!(Cell::Float(1.23456).to_string(), "1.235");
        assert_eq!(Cell::Mtps(12_300_000.0).to_string(), "12.300M");
        assert_eq!(Cell::Micros(20_000.0).to_string(), "20000us");
        assert_eq!(Cell::Empty.to_string(), "");
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(Cell::from("a"), Cell::Text("a".into()));
        assert_eq!(Cell::from(3i64), Cell::Int(3));
        assert_eq!(Cell::from(3u64), Cell::Int(3));
        assert_eq!(Cell::from(0.5), Cell::Float(0.5));
    }

    #[test]
    fn table_render_and_json() {
        let mut t = Table::new("Figure X", &["engine", "throughput"]);
        t.push_row(vec!["Doppel".into(), Cell::Mtps(30e6)]);
        t.push_row(vec!["OCC".into(), Cell::Mtps(1e6)]);
        let text = t.render();
        assert!(text.contains("Figure X"));
        assert!(text.contains("Doppel"));
        assert!(text.contains("30.000M"));
        let json = t.to_json();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows.len(), 2);
        assert_eq!(back.columns, vec!["engine".to_string(), "throughput".to_string()]);
        // Display delegates to render.
        assert_eq!(format!("{t}"), text);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
