//! Zipfian key-popularity distribution.
//!
//! The paper's skewed workloads draw keys from "a Zipfian distribution of
//! popularity, in which the kth most popular item is accessed in proportion
//! to 1/k^α" (§8.4). Table 1 reports the exact probability of the 1st, 2nd,
//! 10th and 100th most popular keys for various α with 1 M keys; the
//! [`ZipfSampler::probability`] method reproduces those numbers.
//!
//! The sampler precomputes the cumulative distribution once (O(N) time,
//! O(N) memory, shared between workers via `Arc`) and samples by binary
//! search (O(log N) per draw), which keeps draws exact for every α including
//! α = 0 (uniform).

use rand::Rng;

/// A sampler over ranks `0..n` where rank `k` (0-based) is drawn with
/// probability proportional to `1 / (k+1)^alpha`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: u64,
    alpha: f64,
    /// Cumulative probabilities; `cdf[k]` = P(rank ≤ k).
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` keys with skew `alpha` (α = 0 is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or `alpha` is negative / non-finite.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one key");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be a non-negative finite number");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(alpha);
            cdf.push(total);
        }
        // Normalise.
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Guard against floating-point drift in the last bucket.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { n, alpha, cdf }
    }

    /// Number of keys.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Exact probability of drawing the key with 0-based popularity rank
    /// `rank` (rank 0 = most popular). This is what Table 1 tabulates.
    pub fn probability(&self, rank: u64) -> f64 {
        assert!(rank < self.n, "rank {rank} out of range");
        let prev = if rank == 0 { 0.0 } else { self.cdf[(rank - 1) as usize] };
        self.cdf[rank as usize] - prev
    }

    /// Draws a 0-based popularity rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose cdf value is > u,
        // i.e. the smallest rank k with P(rank ≤ k) > u.
        let idx = self.cdf.partition_point(|&c| c <= u);
        (idx as u64).min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = ZipfSampler::new(100, 0.0);
        for rank in [0, 50, 99] {
            assert!((z.probability(rank) - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        for alpha in [0.0, 0.4, 0.8, 1.0, 1.4, 2.0] {
            let z = ZipfSampler::new(1_000, alpha);
            let sum: f64 = (0..1_000).map(|r| z.probability(r)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "alpha={alpha}: sum={sum}");
        }
    }

    #[test]
    fn matches_table1_of_the_paper() {
        // Table 1: % of writes to the 1st / 2nd / 10th / 100th most popular
        // keys, 1M keys. Spot-check a few cells (the paper rounds to 4
        // significant digits).
        let cases: &[(f64, u64, f64)] = &[
            (1.0, 0, 0.06953),
            (1.0, 1, 0.03476),
            (1.0, 9, 0.006951),
            (1.4, 0, 0.3230),
            (1.4, 1, 0.1224),
            (2.0, 0, 0.6080),
            (2.0, 1, 0.1520),
            (0.8, 0, 0.01337),
        ];
        for &(alpha, rank, expected) in cases {
            let z = ZipfSampler::new(1_000_000, alpha);
            let got = z.probability(rank);
            let rel = (got - expected).abs() / expected;
            assert!(rel < 0.01, "alpha={alpha} rank={rank}: got {got}, paper says {expected}");
        }
    }

    #[test]
    fn sampling_tracks_probabilities() {
        let z = ZipfSampler::new(1_000, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let draws = 200_000;
        let mut hits0 = 0u64;
        let mut hits1 = 0u64;
        for _ in 0..draws {
            match z.sample(&mut rng) {
                0 => hits0 += 1,
                1 => hits1 += 1,
                _ => {}
            }
        }
        let p0 = hits0 as f64 / draws as f64;
        let p1 = hits1 as f64 / draws as f64;
        assert!((p0 - z.probability(0)).abs() < 0.01, "p0={p0}");
        assert!((p1 - z.probability(1)).abs() < 0.01, "p1={p1}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(10, 1.5);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn higher_alpha_is_more_skewed() {
        let low = ZipfSampler::new(1_000_000, 0.8);
        let high = ZipfSampler::new(1_000_000, 1.8);
        assert!(high.probability(0) > low.probability(0));
        assert!(high.probability(999_999) < low.probability(999_999));
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_keys_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn probability_out_of_range_panics() {
        let z = ZipfSampler::new(10, 1.0);
        let _ = z.probability(10);
    }
}
