//! Open-loop benchmarking: a fixed offered load against the service.
//!
//! The closed-loop driver ([`crate::Driver::run`]) measures *capacity*: each
//! client submits the next transaction only when the previous one completed,
//! so latency feedback throttles the arrival rate. An open-loop client
//! instead submits on a fixed schedule regardless of completions — the
//! arrival process of real external clients — which makes
//! latency-vs-throughput curves measurable: as the offered load approaches
//! capacity, queues fill, latency soars, and past capacity the bounded
//! queues shed load as `Busy` rejections instead of collapsing.
//!
//! Latency is measured from each transaction's *scheduled* submission time,
//! not the instant the submit call ran, so the numbers stay honest when the
//! client itself falls behind (no coordinated omission).

use crate::driver::Workload;
use crate::hist::{Histogram, LatencySummary};
use doppel_common::{Engine, RequestId, ServiceReply, StatsSnapshot, SubmitError};
use doppel_service::{ReplySink, ServiceConfig, ServiceState};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopOptions {
    /// Service worker cores (must not exceed the engine's worker count).
    pub workers: usize,
    /// Client threads generating the offered load.
    pub clients: usize,
    /// Total offered load across all clients, in transactions per second.
    pub offered_load: f64,
    /// Measurement window.
    pub duration: Duration,
    /// Base random seed (client `i` uses `seed + i`).
    pub seed: u64,
    /// Per-core submission queue depth (the backpressure cap).
    pub queue_depth: usize,
    /// How long clients wait for outstanding completions after the window.
    pub drain_grace: Duration,
}

impl Default for OpenLoopOptions {
    fn default() -> Self {
        OpenLoopOptions {
            workers: 1,
            clients: 1,
            offered_load: 10_000.0,
            duration: Duration::from_millis(200),
            seed: 0xD0_99E1,
            queue_depth: 1024,
            drain_grace: Duration::from_millis(500),
        }
    }
}

/// Result of one open-loop run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpenLoopResult {
    /// Engine name.
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// Service worker cores.
    pub workers: usize,
    /// Client threads.
    pub clients: usize,
    /// The configured offered load (txn/s).
    pub offered_load: f64,
    /// Measurement window in seconds.
    pub seconds: f64,
    /// Transactions submitted (accepted by a queue).
    pub submitted: u64,
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that aborted (open loop does not retry: the abort rate
    /// is part of the curve).
    pub aborted: u64,
    /// Submissions shed at the admission boundary (`Busy`).
    pub busy_rejected: u64,
    /// Transactions that went through a Doppel stash before completing.
    pub deferred: u64,
    /// Commits per second over the window.
    pub throughput: f64,
    /// Scheduled-submit → completion latency of committed transactions.
    pub latency: LatencySummary,
    /// Engine statistics delta, including the submission-queue counters.
    pub engine_stats: StatsSnapshot,
}

#[derive(Default)]
struct ClientTally {
    submitted: u64,
    committed: u64,
    aborted: u64,
    busy_rejected: u64,
    deferred: u64,
    latency: Histogram,
}

/// Runs `workload` at a fixed offered load through a transaction service.
/// The engine is shut down (flushing its WAL) before this returns.
pub fn run_open_loop(
    engine: &dyn Engine,
    workload: &dyn Workload,
    options: &OpenLoopOptions,
) -> OpenLoopResult {
    assert!(
        options.workers <= engine.workers(),
        "engine configured with {} workers but the benchmark asked for {}",
        engine.workers(),
        options.workers
    );
    assert!(options.clients > 0, "open loop needs at least one client");
    assert!(options.offered_load > 0.0, "offered load must be positive");
    workload.load(engine);
    let stats_before = engine.stats();
    let service_config =
        ServiceConfig { queue_depth: options.queue_depth, ..ServiceConfig::default() };
    let state = Arc::new(ServiceState::new(options.workers, service_config));
    // Allocation window covers the measured run only, not store loading.
    let alloc_cp = doppel_common::AllocCheckpoint::now();
    let started = Instant::now();

    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let mut worker_joins = Vec::with_capacity(options.workers);
        for core in 0..options.workers {
            let state = Arc::clone(&state);
            worker_joins.push(scope.spawn(move || state.worker_loop(engine, core)));
        }
        let mut client_joins = Vec::with_capacity(options.clients);
        for client in 0..options.clients {
            let state = Arc::clone(&state);
            let mut generator = workload.generator(client, options.seed + client as u64);
            let opts = options.clone();
            client_joins.push(scope.spawn(move || {
                run_open_loop_client(&state, client, generator.as_mut(), &opts, started)
            }));
        }
        let tallies: Vec<ClientTally> =
            client_joins.into_iter().map(|j| j.join().expect("open-loop client panicked")).collect();
        state.close();
        engine.begin_drain();
        for j in worker_joins {
            j.join().expect("service worker panicked");
        }
        tallies
    });
    let (alloc_count, alloc_bytes) = alloc_cp.delta();

    let mut totals = ClientTally::default();
    for t in &tallies {
        totals.submitted += t.submitted;
        totals.committed += t.committed;
        totals.aborted += t.aborted;
        totals.busy_rejected += t.busy_rejected;
        totals.deferred += t.deferred;
        totals.latency.merge(&t.latency);
    }
    engine.shutdown();
    let stats_after = engine.stats().with_queue_counters(&state.queue_stats());
    let seconds = options.duration.as_secs_f64();
    OpenLoopResult {
        engine: engine.name().to_string(),
        workload: workload.name(),
        workers: options.workers,
        clients: options.clients,
        offered_load: options.offered_load,
        seconds,
        submitted: totals.submitted,
        committed: totals.committed,
        aborted: totals.aborted,
        busy_rejected: totals.busy_rejected,
        deferred: totals.deferred,
        throughput: totals.committed as f64 / seconds,
        latency: totals.latency.summary(),
        engine_stats: stats_after
            .delta(&stats_before)
            .with_alloc_counters(alloc_count, alloc_bytes),
    }
}

fn run_open_loop_client(
    state: &ServiceState,
    client: usize,
    generator: &mut dyn crate::driver::TxnGenerator,
    options: &OpenLoopOptions,
    started: Instant,
) -> ClientTally {
    let (tx, rx): (Sender<ServiceReply>, Receiver<ServiceReply>) = std::sync::mpsc::channel();
    let sink: ReplySink = Arc::new(move |reply| {
        let _ = tx.send(reply);
    });
    let mut tally = ClientTally::default();
    // id → scheduled submission time of in-flight transactions.
    let mut inflight: HashMap<RequestId, Instant> = HashMap::new();
    let mut next_id = 0u64;

    // Each client carries `offered / clients` txn/s; stagger the schedules
    // so the aggregate arrival process is smooth rather than lock-stepped.
    let interval = Duration::from_secs_f64(options.clients as f64 / options.offered_load);
    let mut next_submit = started + interval.mul_f64(client as f64 / options.clients as f64);
    let end = started + options.duration;
    let mut submit_core = client % state.workers();

    loop {
        let now = Instant::now();
        if now >= end {
            break;
        }
        if now < next_submit {
            // Ahead of schedule: use the slack to collect completions.
            let slack = next_submit.min(end).saturating_duration_since(now);
            if let Ok(reply) = rx.recv_timeout(slack.min(Duration::from_millis(1))) {
                absorb(reply, &mut inflight, &mut tally);
            }
            continue;
        }
        // Due (possibly overdue): submit one transaction stamped with its
        // *scheduled* time, then advance the schedule.
        let scheduled = next_submit;
        next_submit += interval;
        let txn = generator.next_txn();
        next_id += 1;
        let id = RequestId(next_id);
        submit_core = (submit_core + 1) % state.workers();
        match state.submit_to(submit_core, id, txn.proc, Arc::clone(&sink)) {
            Ok(()) => {
                tally.submitted += 1;
                inflight.insert(id, scheduled);
            }
            Err(SubmitError::Busy) => tally.busy_rejected += 1,
            Err(SubmitError::Shutdown) => break,
        }
        // Opportunistically drain without blocking so the schedule holds.
        while let Ok(reply) = rx.try_recv() {
            absorb(reply, &mut inflight, &mut tally);
        }
    }

    // Grace period: wait for outstanding completions (queue backlog plus
    // stash replays).
    let deadline = Instant::now() + options.drain_grace;
    while !inflight.is_empty() {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        match rx.recv_timeout(left.min(Duration::from_millis(5))) {
            Ok(reply) => absorb(reply, &mut inflight, &mut tally),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    tally
}

fn absorb(reply: ServiceReply, inflight: &mut HashMap<RequestId, Instant>, tally: &mut ClientTally) {
    match reply {
        ServiceReply::Deferred(_) => tally.deferred += 1,
        ServiceReply::Done(c) => {
            if let Some(scheduled) = inflight.remove(&c.request) {
                match c.result {
                    Ok(_) => {
                        tally.committed += 1;
                        tally.latency.record(scheduled.elapsed());
                    }
                    Err(_) => tally.aborted += 1,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incr::Incr1Workload;

    #[test]
    fn open_loop_hits_a_modest_offered_load() {
        let engine = doppel_occ::OccEngine::new(2, 256);
        let workload = Incr1Workload::new(1024, 0.5);
        let options = OpenLoopOptions {
            workers: 2,
            clients: 2,
            offered_load: 20_000.0,
            duration: Duration::from_millis(200),
            ..Default::default()
        };
        let result = run_open_loop(&engine, &workload, &options);
        // A modest load on an in-memory engine: the vast majority must be
        // admitted and complete.
        assert!(result.submitted > 0);
        assert!(result.committed > 0);
        let target = options.offered_load * options.duration.as_secs_f64();
        assert!(
            (result.submitted + result.busy_rejected) as f64 >= 0.5 * target,
            "offered {} but only {} submissions were attempted",
            target,
            result.submitted + result.busy_rejected
        );
        assert!(result.latency.count == result.committed);
        assert!(result.engine_stats.queue_enqueued >= result.submitted);
        assert_eq!(result.engine, "OCC");
    }

    #[test]
    fn overload_sheds_as_busy_rejections_not_collapse() {
        // One slow worker (every txn sleeps) with a tiny queue: an offered
        // load far beyond capacity must surface as Busy rejections.
        struct SlowWorkload;
        struct SlowGen;
        impl crate::driver::Workload for SlowWorkload {
            fn name(&self) -> String {
                "slow".into()
            }
            fn load(&self, engine: &dyn Engine) {
                engine.load(doppel_common::Key::raw(1), doppel_common::Value::Int(0));
            }
            fn generator(&self, _core: usize, _seed: u64) -> Box<dyn crate::driver::TxnGenerator> {
                Box::new(SlowGen)
            }
        }
        impl crate::driver::TxnGenerator for SlowGen {
            fn next_txn(&mut self) -> crate::driver::GeneratedTxn {
                crate::driver::GeneratedTxn {
                    proc: Arc::new(doppel_common::ProcedureFn::new("slow", |tx| {
                        std::thread::sleep(Duration::from_micros(500));
                        tx.add(doppel_common::Key::raw(1), 1)
                    })),
                    is_write: true,
                }
            }
        }
        let engine = doppel_occ::OccEngine::new(1, 16);
        let options = OpenLoopOptions {
            workers: 1,
            clients: 1,
            offered_load: 50_000.0, // capacity is ~2k/s with the 500µs sleep
            duration: Duration::from_millis(150),
            queue_depth: 4,
            ..Default::default()
        };
        let result = run_open_loop(&engine, &SlowWorkload, &options);
        assert!(result.busy_rejected > 0, "overload must shed at the admission boundary");
        assert!(result.engine_stats.queue_busy_rejections >= result.busy_rejected);
    }
}
