//! The FLAGS fraud-flagging benchmark.
//!
//! A fraud-detection pipeline evaluates rules against accounts. Each *flag*
//! transaction ORs the triggered rule's bit into the account's flag bitmask
//! (`BitOr`), bumps the account's saturating strike counter (`BoundedAdd` —
//! after `strike_cap` strikes the account is frozen, so counting further adds
//! no information), and inserts an immutable event row for the audit trail.
//! Each *check* transaction reads an account's flags and strike count (e.g.
//! a login-risk check).
//!
//! Accounts are chosen from a Zipfian distribution: a few compromised
//! accounts receive most of the flag traffic, so their bitmask and strike
//! records become contended — and both update operations commute, which is
//! exactly the shape Doppel's phase reconciliation exploits. This workload
//! exists to exercise the `BitOr` and `BoundedAdd` splittable operations
//! end-to-end through the shared benchmark driver.

use crate::driver::{GeneratedTxn, TxnGenerator, Workload};
use crate::zipf::ZipfSampler;
use doppel_common::{Engine, Key, Procedure, Table, Tx, TxError, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Number of distinct fraud rules (one flag bit each).
pub const RULES: u32 = 48;

/// Key of an account's flag bitmask.
pub fn flags_key(account: u64) -> Key {
    Key::new(Table::AccountFlags, account, 0)
}

/// Key of an account's saturating strike counter.
pub fn strikes_key(account: u64) -> Key {
    Key::new(Table::AccountStrikes, account, 0)
}

/// Key of the audit-trail row a flag transaction inserts. `row` is a
/// globally unique event id (the generator packs `core << 32 | seq`, which
/// cannot collide across cores or wrap within a run).
pub fn event_key(row: u64) -> Key {
    Key::new(Table::FlagEvent, row, 0)
}

/// Write transaction: a rule fires against an account.
pub struct FlagRaise {
    /// The flagged account.
    pub account: u64,
    /// The rule that fired (`0..RULES`).
    pub rule: u32,
    /// Strike-counter saturation bound.
    pub strike_cap: i64,
    /// Unique id of the audit row.
    pub row: u64,
}

impl Procedure for FlagRaise {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        // Audit row (never contended: the row id is unique per event).
        tx.put(event_key(self.row), Value::Int(self.rule as i64))?;
        // Flag bit (contended for hot accounts, commutative).
        tx.bit_or(flags_key(self.account), 1 << (self.rule % RULES))?;
        // Strike counter, saturating at the freeze threshold.
        tx.bounded_add(strikes_key(self.account), 1, self.strike_cap)
    }

    fn name(&self) -> &'static str {
        "FLAGS-raise"
    }
}

/// Read transaction: a risk check reads flags and strikes.
pub struct FlagCheck {
    /// The account being checked.
    pub account: u64,
}

impl Procedure for FlagCheck {
    fn run(&self, tx: &mut dyn Tx) -> Result<(), TxError> {
        let _flags = tx.get_int(flags_key(self.account))?;
        let _strikes = tx.get_int(strikes_key(self.account))?;
        Ok(())
    }

    fn name(&self) -> &'static str {
        "FLAGS-check"
    }

    fn is_read_only(&self) -> bool {
        true
    }
}

/// The FLAGS workload: a mix of flag-raise and risk-check transactions over
/// Zipf-popular accounts.
pub struct FlagsWorkload {
    /// Number of accounts.
    pub accounts: u64,
    /// Fraction of transactions that raise a flag, in `[0, 1]`.
    pub write_fraction: f64,
    /// Zipf parameter for account popularity (how concentrated the fraud
    /// traffic is on a few compromised accounts).
    pub alpha: f64,
    /// Strike-counter saturation bound.
    pub strike_cap: i64,
    sampler: Arc<ZipfSampler>,
}

impl FlagsWorkload {
    /// Builds a FLAGS workload.
    pub fn new(accounts: u64, write_fraction: f64, alpha: f64, strike_cap: i64) -> Self {
        assert!((0.0..=1.0).contains(&write_fraction), "write_fraction must be in [0,1]");
        assert!(strike_cap > 0, "strike_cap must be positive");
        FlagsWorkload {
            accounts,
            write_fraction,
            alpha,
            strike_cap,
            sampler: Arc::new(ZipfSampler::new(accounts, alpha)),
        }
    }

    /// A skewed write-heavy mix: a fraud wave hammering a few accounts.
    pub fn fraud_wave(accounts: u64) -> Self {
        FlagsWorkload::new(accounts, 0.9, 1.4, 1_000_000)
    }
}

impl Workload for FlagsWorkload {
    fn name(&self) -> String {
        format!(
            "FLAGS(writes={:.0}%, alpha={:.2}, cap={})",
            self.write_fraction * 100.0,
            self.alpha,
            self.strike_cap
        )
    }

    fn load(&self, engine: &dyn Engine) {
        for a in 0..self.accounts {
            engine.load(flags_key(a), Value::Int(0));
            engine.load(strikes_key(a), Value::Int(0));
        }
    }

    fn generator(&self, core: usize, seed: u64) -> Box<dyn TxnGenerator> {
        Box::new(FlagsGenerator {
            write_fraction: self.write_fraction,
            strike_cap: self.strike_cap,
            sampler: Arc::clone(&self.sampler),
            rng: SmallRng::seed_from_u64(seed.wrapping_add(core as u64).wrapping_mul(0x9E3779B9)),
            seq: 0,
            core: core as u32,
        })
    }
}

struct FlagsGenerator {
    write_fraction: f64,
    strike_cap: i64,
    sampler: Arc<ZipfSampler>,
    rng: SmallRng,
    seq: u32,
    core: u32,
}

impl TxnGenerator for FlagsGenerator {
    fn next_txn(&mut self) -> GeneratedTxn {
        let account = self.sampler.sample(&mut self.rng);
        if self.rng.gen::<f64>() < self.write_fraction {
            self.seq += 1;
            // Audit rows are keyed per (core, seq) so concurrent workers
            // never insert the same row, with no wraparound within a run.
            let row = ((self.core as u64) << 32) | u64::from(self.seq);
            let rule = self.rng.gen_range(0..RULES);
            GeneratedTxn {
                proc: Arc::new(FlagRaise { account, rule, strike_cap: self.strike_cap, row }),
                is_write: true,
            }
        } else {
            GeneratedTxn { proc: Arc::new(FlagCheck { account }), is_write: false }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{BenchOptions, Driver};
    use std::time::Duration;

    #[test]
    fn flag_raise_updates_all_three_records() {
        let engine = doppel_occ::OccEngine::new(1, 64);
        let w = FlagsWorkload::new(16, 1.0, 0.0, 5);
        w.load(&engine);
        let mut h = engine.handle(0);
        let txn = Arc::new(FlagRaise { account: 3, rule: 2, strike_cap: 5, row: 1 });
        assert!(h.execute(txn).is_committed());
        assert_eq!(engine.global_get(flags_key(3)), Some(Value::Int(0b100)));
        assert_eq!(engine.global_get(strikes_key(3)), Some(Value::Int(1)));
        assert_eq!(engine.global_get(event_key(1)), Some(Value::Int(2)));
    }

    #[test]
    fn strike_counter_saturates_at_cap() {
        let engine = doppel_occ::OccEngine::new(1, 64);
        let w = FlagsWorkload::new(4, 1.0, 0.0, 3);
        w.load(&engine);
        let mut h = engine.handle(0);
        for row in 0..10 {
            let txn = Arc::new(FlagRaise { account: 0, rule: 1, strike_cap: 3, row });
            assert!(h.execute(txn).is_committed());
        }
        assert_eq!(engine.global_get(strikes_key(0)), Some(Value::Int(3)));
    }

    #[test]
    fn full_run_strike_totals_match_committed_writes() {
        // With a cap far above the commit count, every committed raise adds
        // exactly one strike, so the strike sum equals the committed count.
        let engine = doppel_occ::OccEngine::new(2, 128);
        let w = FlagsWorkload::new(64, 1.0, 1.4, 1_000_000_000);
        let result = Driver::run(&engine, &w, &BenchOptions::new(2, Duration::from_millis(80)));
        let mut strikes = 0i64;
        for a in 0..64 {
            strikes += engine.global_get(strikes_key(a)).unwrap().as_int().unwrap();
            let flags = engine.global_get(flags_key(a)).unwrap().as_int().unwrap();
            assert_eq!(flags & !((1i64 << RULES) - 1), 0, "only rule bits may be set");
        }
        assert_eq!(strikes as u64, result.committed);
        assert_eq!(result.write_latency.count, result.committed);
    }

    #[test]
    fn doppel_runs_flags_under_contention_to_completion() {
        // Acceptance: a new workload runs through the shared driver on
        // Doppel with aggressive splitting, and the commutative updates
        // survive splitting + reconciliation exactly.
        let cfg = doppel_common::DoppelConfig {
            workers: 2,
            phase_len: Duration::from_millis(4),
            split_min_conflicts: 2,
            split_conflict_fraction: 0.0,
            unsplit_write_fraction: 0.0,
            ..Default::default()
        };
        let engine = doppel_db::DoppelDb::start(cfg);
        let w = FlagsWorkload::new(8, 1.0, 1.8, 1_000_000_000);
        let result = Driver::run(&engine, &w, &BenchOptions::new(2, Duration::from_millis(200)));
        let mut strikes = 0i64;
        for a in 0..8 {
            strikes += engine.global_get(strikes_key(a)).unwrap().as_int().unwrap();
        }
        assert_eq!(strikes as u64, result.committed);
    }

    #[test]
    fn write_fraction_is_respected() {
        let w = FlagsWorkload::new(100, 0.25, 0.0, 10);
        let mut gen = w.generator(0, 42);
        let n = 10_000;
        let writes = (0..n).filter(|_| gen.next_txn().is_write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn name_and_presets() {
        assert!(FlagsWorkload::fraud_wave(10).name().contains("90%"));
        assert_eq!(FlagsWorkload::fraud_wave(10).alpha, 1.4);
    }

    #[test]
    #[should_panic(expected = "write_fraction")]
    fn invalid_write_fraction_panics() {
        let _ = FlagsWorkload::new(10, 2.0, 1.0, 10);
    }
}
