//! Workload generators and the benchmark driver.
//!
//! This crate reproduces the workloads of the paper's evaluation (§7–§8):
//!
//! * [`zipf`] — the Zipfian key-popularity distribution used throughout §8
//!   (and the exact probabilities behind Table 1);
//! * [`adaptive`] — the ADAPTIVE benchmark: a migrating hot set of auction
//!   items, built to exercise the adaptive contention controller against an
//!   oracle labelling (beyond the paper);
//! * [`incr`] — the INCR1 and INCRZ microbenchmarks (Figures 8–11);
//! * [`like`] — the LIKE social-network benchmark (Figures 12–14, Table 3);
//! * [`flags`] — the FLAGS fraud-flagging benchmark exercising the `BitOr`
//!   and `BoundedAdd` splittable operations (beyond the paper);
//! * [`visitors`] — the VISITORS unique-audience benchmark exercising the
//!   `SetUnion` splittable operation (beyond the paper);
//! * [`driver`] — the multi-threaded measurement harness: per-core clients
//!   that generate transactions and submit them through a
//!   [`doppel_service::ServiceState`] worker pool (one engine-owned worker
//!   per core, bounded submission queues, typed completions), retry aborts
//!   with exponential backoff, track stash-deferred completions and record
//!   read/write latencies — the methodology of §8.1 under the deployment
//!   model of §3. `Driver::run_direct` keeps the original caller-thread
//!   execution path as a baseline;
//! * [`open_loop`] — the open-loop harness: a fixed offered load submitted
//!   on a schedule, for latency-vs-throughput curves with backpressure;
//! * [`hist`] — latency histograms (mean and 99th percentile);
//! * [`report`] — typed results and plain-text / JSON rendering of the
//!   tables and series the paper reports.

pub mod adaptive;
pub mod driver;
pub mod flags;
pub mod hist;
pub mod incr;
pub mod like;
pub mod open_loop;
pub mod report;
pub mod visitors;
pub mod zipf;

pub use adaptive::AdaptiveWorkload;
pub use driver::{BenchOptions, BenchResult, Driver, GeneratedTxn, TxnGenerator, Workload};
pub use flags::FlagsWorkload;
pub use hist::{Histogram, LatencySummary};
pub use incr::{Incr1Workload, IncrZWorkload};
pub use like::LikeWorkload;
pub use open_loop::{run_open_loop, OpenLoopOptions, OpenLoopResult};
pub use report::{Cell, Table};
pub use visitors::VisitorsWorkload;
pub use zipf::ZipfSampler;
