//! The benchmark driver.
//!
//! Reproduces the measurement methodology of §8.1 — per-core clients that
//! generate transactions, retry aborts with exponential backoff and track
//! stashed-transaction completions — but through the paper's *deployment*
//! model (§3, §6): clients and workers are separate threads. [`Driver::run`]
//! spawns a [`doppel_service::ServiceState`] worker per core (each owning
//! its engine [`TxHandle`]), plus one closed-loop client per core that
//! submits procedures through the bounded submission queues and consumes
//! typed completions.
//!
//! [`Driver::run_direct`] preserves the original caller-thread execution
//! model — the benchmark thread calling [`TxHandle::execute`] on its own
//! stack — both as the zero-queue baseline and for the service-vs-direct
//! differential test suites.
//!
//! The driver works against any [`Engine`] — Doppel, OCC, 2PL or Atomic —
//! exactly as in the paper where all schemes share one framework.

use crate::hist::{Histogram, LatencySummary};
use doppel_common::{
    AllocCheckpoint, Engine, Outcome, Procedure, ProcRegistry, ProcStatsSnapshot, RequestId,
    ServiceReply, StatsSnapshot, SubmitError, Ticket, TxHandle,
};
use doppel_service::{ReplySink, ServiceConfig, ServiceState};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One generated transaction: the procedure plus the metadata the harness
/// needs for latency accounting.
pub struct GeneratedTxn {
    /// The transaction body.
    pub proc: Arc<dyn Procedure>,
    /// True when the transaction writes (paper reports read and write
    /// latencies separately).
    pub is_write: bool,
}

/// Per-worker transaction generator.
pub trait TxnGenerator: Send {
    /// Produces the next transaction this worker should submit.
    fn next_txn(&mut self) -> GeneratedTxn;
}

/// A benchmark workload: knows how to pre-populate the store and how to build
/// per-worker generators.
pub trait Workload: Sync {
    /// Workload name used in reports.
    fn name(&self) -> String;

    /// Pre-populates the engine's store ("we pre-allocate all the records",
    /// §8.1).
    fn load(&self, engine: &dyn Engine);

    /// Creates the generator for worker `core`.
    fn generator(&self, core: usize, seed: u64) -> Box<dyn TxnGenerator>;

    /// The procedure registry this workload's generated transactions invoke,
    /// when the workload routes through registered procedures. The driver
    /// snapshots its per-procedure counters into
    /// [`BenchResult::proc_stats`]; closure-based workloads return `None`.
    fn proc_registry(&self) -> Option<Arc<ProcRegistry>> {
        None
    }
}

/// Options controlling one benchmark run.
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Number of worker threads to drive (must not exceed the engine's
    /// configured worker count).
    pub workers: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// Base random seed (worker `i` uses `seed + i`).
    pub seed: u64,
    /// Maximum number of retry entries buffered per worker before the worker
    /// prefers draining retries over generating new transactions.
    pub max_pending_retries: usize,
    /// Per-core submission queue depth for the service path.
    pub queue_depth: usize,
    /// How long clients keep collecting stash-deferred completions after the
    /// measurement window closes.
    pub drain_grace: Duration,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            workers: 1,
            duration: Duration::from_millis(200),
            seed: 0xD0_99E1,
            max_pending_retries: 4096,
            queue_depth: 1024,
            drain_grace: Duration::from_millis(500),
        }
    }
}

impl BenchOptions {
    /// Convenience constructor for `workers` workers running for `duration`.
    pub fn new(workers: usize, duration: Duration) -> Self {
        BenchOptions { workers, duration, ..Default::default() }
    }
}

/// Result of one benchmark run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchResult {
    /// Engine name ("Doppel", "OCC", "2PL", "Atomic").
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// Number of worker threads used.
    pub workers: usize,
    /// Measured wall-clock duration in seconds.
    pub seconds: f64,
    /// Transactions that committed during the run (including replayed
    /// stashed transactions).
    pub committed: u64,
    /// Commits per second.
    pub throughput: f64,
    /// Aborts handed back to the harness for retry.
    pub aborts: u64,
    /// Transactions stashed by Doppel during split phases.
    pub stashed: u64,
    /// Read-transaction latency summary.
    pub read_latency: LatencySummary,
    /// Write-transaction latency summary.
    pub write_latency: LatencySummary,
    /// Engine statistics delta over the run (service runs include the
    /// submission-queue counters).
    pub engine_stats: StatsSnapshot,
    /// Per-procedure counters, when the workload routes through a
    /// [`ProcRegistry`] (empty for closure-based workloads).
    pub proc_stats: Vec<ProcStatsSnapshot>,
}

impl BenchResult {
    /// Throughput in transactions per second per worker.
    pub fn per_core_throughput(&self) -> f64 {
        self.throughput / self.workers.max(1) as f64
    }
}

/// Per-run delta of a workload's per-procedure counters. A registry lives
/// inside its workload and outlives a run (experiments reuse one workload
/// across engines), so the cumulative snapshot must be differenced exactly
/// like `engine_stats`.
fn proc_stats_delta(
    registry: Option<&Arc<ProcRegistry>>,
    before: Option<Vec<ProcStatsSnapshot>>,
) -> Vec<ProcStatsSnapshot> {
    let Some(registry) = registry else { return Vec::new() };
    let before = before.unwrap_or_default();
    registry
        .stats()
        .into_iter()
        .enumerate()
        .map(|(i, after)| match before.get(i) {
            Some(b) if b.name == after.name => after.delta(b),
            _ => after,
        })
        .collect()
}

/// A transaction waiting to be retried after an abort.
struct RetryEntry {
    proc: Arc<dyn Procedure>,
    is_write: bool,
    submitted: Instant,
    attempts: u32,
    due: Instant,
}

/// Per-worker measurement state.
#[derive(Default)]
struct WorkerTally {
    committed: u64,
    aborts: u64,
    stashed: u64,
    reads: Histogram,
    writes: Histogram,
}

/// The benchmark driver.
pub struct Driver;

impl Driver {
    /// Runs `workload` against `engine` through a transaction service and
    /// collects a [`BenchResult`].
    ///
    /// One service worker and one closed-loop client are spawned per core:
    /// the client submits through the core's bounded queue and waits for the
    /// typed completion, retrying retryable aborts with exponential backoff.
    /// Stash-deferred transactions (`Deferred` replies) do not block the
    /// client; their completions are collected as they arrive.
    ///
    /// The engine must have been created with at least `options.workers`
    /// workers. The store is loaded through [`Workload::load`] before
    /// measurement starts. The engine is shut down (and its WAL flushed)
    /// before this returns.
    pub fn run(engine: &dyn Engine, workload: &dyn Workload, options: &BenchOptions) -> BenchResult {
        assert!(
            options.workers <= engine.workers(),
            "engine configured with {} workers but the benchmark asked for {}",
            engine.workers(),
            options.workers
        );
        workload.load(engine);
        let stats_before = engine.stats();
        let proc_registry = workload.proc_registry();
        let proc_stats_before = proc_registry.as_ref().map(|r| r.stats());
        let service_config = ServiceConfig {
            queue_depth: options.queue_depth,
            ..ServiceConfig::default()
        };
        let state = Arc::new(ServiceState::new(options.workers, service_config));
        let stop = AtomicBool::new(false);
        // Allocation window covers the measured run only, not store loading.
        let alloc_cp = AllocCheckpoint::now();
        let started = Instant::now();
        let mut measured = Duration::ZERO;

        let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
            let mut worker_joins = Vec::with_capacity(options.workers);
            for core in 0..options.workers {
                let state = Arc::clone(&state);
                worker_joins.push(scope.spawn(move || state.worker_loop(engine, core)));
            }
            let mut client_joins = Vec::with_capacity(options.workers);
            for core in 0..options.workers {
                let state = Arc::clone(&state);
                let stop = &stop;
                let mut generator = workload.generator(core, options.seed + core as u64);
                let opts = options.clone();
                client_joins.push(scope.spawn(move || {
                    run_closed_loop_client(&state, core, generator.as_mut(), stop, &opts)
                }));
            }
            // Let the clients run for the configured duration, then stop
            // them; the measurement window closes here.
            std::thread::sleep(options.duration);
            stop.store(true, Ordering::Release);
            measured = started.elapsed();
            let tallies: Vec<WorkerTally> =
                client_joins.into_iter().map(|j| j.join().expect("benchmark client panicked")).collect();
            // Graceful drain: close the queues and let the workers replay
            // any remaining Doppel stashes before they exit.
            state.close();
            engine.begin_drain();
            for j in worker_joins {
                j.join().expect("service worker panicked");
            }
            tallies
        });
        let (alloc_count, alloc_bytes) = alloc_cp.delta();

        let mut committed = 0;
        let mut aborts = 0;
        let mut stashed = 0;
        let mut reads = Histogram::new();
        let mut writes = Histogram::new();
        for t in &tallies {
            committed += t.committed;
            aborts += t.aborts;
            stashed += t.stashed;
            reads.merge(&t.reads);
            writes.merge(&t.writes);
        }
        engine.shutdown();
        let stats_after = engine.stats().with_queue_counters(&state.queue_stats());
        BenchResult {
            engine: engine.name().to_string(),
            workload: workload.name(),
            workers: options.workers,
            seconds: measured.as_secs_f64(),
            committed,
            throughput: committed as f64 / measured.as_secs_f64(),
            aborts,
            stashed,
            read_latency: reads.summary(),
            write_latency: writes.summary(),
            engine_stats: stats_after
                .delta(&stats_before)
                .with_alloc_counters(alloc_count, alloc_bytes),
            proc_stats: proc_stats_delta(proc_registry.as_ref(), proc_stats_before),
        }
    }

    /// Runs `workload` with the original caller-thread execution model: each
    /// benchmark thread drives its core's [`TxHandle`] directly, no queues
    /// in between. Kept as the zero-queue baseline and for the
    /// service-vs-direct equivalence suites.
    pub fn run_direct(
        engine: &dyn Engine,
        workload: &dyn Workload,
        options: &BenchOptions,
    ) -> BenchResult {
        assert!(
            options.workers <= engine.workers(),
            "engine configured with {} workers but the benchmark asked for {}",
            engine.workers(),
            options.workers
        );
        workload.load(engine);
        let stats_before = engine.stats();
        let proc_registry = workload.proc_registry();
        let proc_stats_before = proc_registry.as_ref().map(|r| r.stats());
        let stop = AtomicBool::new(false);
        // Allocation window covers the measured run only, not store loading.
        let alloc_cp = AllocCheckpoint::now();
        let started = Instant::now();

        let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(options.workers);
            for core in 0..options.workers {
                let stop = &stop;
                let mut generator = workload.generator(core, options.seed + core as u64);
                let mut handle = engine.handle(core);
                let max_pending = options.max_pending_retries;
                joins.push(scope.spawn(move || {
                    run_direct_worker(handle.as_mut(), generator.as_mut(), stop, max_pending)
                }));
            }
            // Let the workers run for the configured duration, then stop them.
            std::thread::sleep(options.duration);
            stop.store(true, Ordering::Release);
            // Unblock any Doppel worker waiting on a phase transition whose
            // peers have already stopped.
            engine.shutdown();
            joins.into_iter().map(|j| j.join().expect("benchmark worker panicked")).collect()
        });
        let (alloc_count, alloc_bytes) = alloc_cp.delta();

        let elapsed = started.elapsed();
        let mut committed = 0;
        let mut aborts = 0;
        let mut stashed = 0;
        let mut reads = Histogram::new();
        let mut writes = Histogram::new();
        for t in &tallies {
            committed += t.committed;
            aborts += t.aborts;
            stashed += t.stashed;
            reads.merge(&t.reads);
            writes.merge(&t.writes);
        }
        let stats_after = engine.stats();
        BenchResult {
            engine: engine.name().to_string(),
            workload: workload.name(),
            workers: options.workers,
            seconds: elapsed.as_secs_f64(),
            committed,
            throughput: committed as f64 / elapsed.as_secs_f64(),
            aborts,
            stashed,
            read_latency: reads.summary(),
            write_latency: writes.summary(),
            engine_stats: stats_after
                .delta(&stats_before)
                .with_alloc_counters(alloc_count, alloc_bytes),
            proc_stats: proc_stats_delta(proc_registry.as_ref(), proc_stats_before),
        }
    }
}

/// Exponential backoff delay after `attempts` consecutive aborts.
fn backoff_delay(attempts: u32) -> Duration {
    let exp = attempts.min(12);
    Duration::from_micros(2u64.pow(exp).min(4_096))
}

/// Closed-loop client for one core: submit one transaction, wait for its
/// typed completion, repeat. Stash-deferred transactions release the loop
/// immediately (their completions are consumed when they arrive), matching
/// the paper's harness where a stashed transaction frees its worker.
fn run_closed_loop_client(
    state: &ServiceState,
    core: usize,
    generator: &mut dyn TxnGenerator,
    stop: &AtomicBool,
    options: &BenchOptions,
) -> WorkerTally {
    let (tx, rx): (Sender<ServiceReply>, Receiver<ServiceReply>) = std::sync::mpsc::channel();
    let sink: ReplySink = Arc::new(move |reply| {
        let _ = tx.send(reply);
    });
    let mut tally = WorkerTally::default();
    let mut retries: Vec<RetryEntry> = Vec::new();
    // Stash-deferred submissions accumulate here until their replayed
    // completions arrive; the (single) synchronously awaited submission
    // lives in a local inside the loop.
    let mut deferred: HashMap<RequestId, (Instant, bool)> = HashMap::new();
    let mut next_id = 0u64;
    let mut shutdown_seen = false;

    let mut check_counter = 0u32;
    'outer: loop {
        check_counter += 1;
        if check_counter & 0x3F == 0 && stop.load(Ordering::Acquire) {
            break;
        }

        // Consume completions of stash-deferred transactions.
        while let Ok(reply) = rx.try_recv() {
            absorb_async_reply(reply, &mut deferred, &mut tally);
        }

        // Prefer a due retry; otherwise generate a fresh transaction, unless
        // the retry queue is saturated.
        let now = Instant::now();
        let due_idx = retries.iter().position(|r| r.due <= now);
        let (proc, is_write, submitted, attempts) = match due_idx {
            Some(idx) => {
                let entry = retries.swap_remove(idx);
                (entry.proc, entry.is_write, entry.submitted, entry.attempts)
            }
            None if retries.len() >= options.max_pending_retries => {
                let earliest = retries.iter().map(|r| r.due).min().expect("non-empty");
                let wait = earliest.saturating_duration_since(now);
                if !wait.is_zero() {
                    std::thread::sleep(wait.min(Duration::from_millis(1)));
                }
                continue;
            }
            None => {
                let txn = generator.next_txn();
                (txn.proc, txn.is_write, Instant::now(), 0)
            }
        };

        next_id += 1;
        let id = RequestId(next_id);
        loop {
            match state.submit_to(core, id, Arc::clone(&proc), Arc::clone(&sink)) {
                Ok(()) => break,
                Err(SubmitError::Busy) => {
                    // Closed-loop backpressure: wait for the queue to move.
                    std::thread::sleep(Duration::from_micros(20));
                    if stop.load(Ordering::Acquire) {
                        break 'outer;
                    }
                }
                Err(SubmitError::Shutdown) => break 'outer,
            }
        }

        // Wait for this submission's reply (other ids may complete first).
        loop {
            let reply = match rx.recv() {
                Ok(r) => r,
                Err(_) => break 'outer,
            };
            if reply.request() != id {
                absorb_async_reply(reply, &mut deferred, &mut tally);
                continue;
            }
            match reply {
                ServiceReply::Deferred(_) => {
                    tally.stashed += 1;
                    deferred.insert(id, (submitted, is_write));
                }
                ServiceReply::Done(c) => match c.result {
                    Ok(_) => {
                        tally.committed += 1;
                        record_latency(&mut tally, is_write, submitted.elapsed());
                    }
                    Err(e) if e.is_retryable() => {
                        tally.aborts += 1;
                        let attempts = attempts + 1;
                        retries.push(RetryEntry {
                            proc,
                            is_write,
                            submitted,
                            attempts,
                            due: Instant::now() + backoff_delay(attempts),
                        });
                    }
                    Err(doppel_common::TxError::Shutdown) => {
                        shutdown_seen = true;
                    }
                    Err(_) => {
                        // User aborts and type errors are not retried.
                        tally.aborts += 1;
                    }
                },
            }
            break;
        }
        if shutdown_seen {
            break;
        }
    }

    // Collect outstanding stash-deferred completions: their replays need a
    // phase transition, so give the engine a bounded grace period.
    let deadline = Instant::now() + options.drain_grace;
    while !deferred.is_empty() {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        match rx.recv_timeout(left.min(Duration::from_millis(5))) {
            Ok(reply) => absorb_async_reply(reply, &mut deferred, &mut tally),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    tally
}

/// Accounts a reply that arrived asynchronously (a stash-deferred
/// completion, or a `Deferred` notice raced past its waiter).
fn absorb_async_reply(
    reply: ServiceReply,
    deferred: &mut HashMap<RequestId, (Instant, bool)>,
    tally: &mut WorkerTally,
) {
    if let ServiceReply::Done(c) = reply {
        if let Some((submitted, is_write)) = deferred.remove(&c.request) {
            match c.result {
                Ok(_) => {
                    tally.committed += 1;
                    record_latency(tally, is_write, submitted.elapsed());
                }
                Err(_) => tally.aborts += 1,
            }
        }
    }
}

fn run_direct_worker(
    handle: &mut dyn TxHandle,
    generator: &mut dyn TxnGenerator,
    stop: &AtomicBool,
    max_pending_retries: usize,
) -> WorkerTally {
    let mut tally = WorkerTally::default();
    let mut retries: Vec<RetryEntry> = Vec::new();
    // Stashed transactions: ticket → (submit time, is_write).
    let mut stashed: HashMap<Ticket, (Instant, bool)> = HashMap::new();

    let mut check_counter = 0u32;
    loop {
        // Check the stop flag every few transactions to keep overhead low.
        check_counter += 1;
        if check_counter & 0x3F == 0 && stop.load(Ordering::Acquire) {
            break;
        }

        // Collect completions of previously stashed transactions.
        for completion in handle.take_completions() {
            if let Some((submitted, is_write)) = stashed.remove(&completion.ticket) {
                match completion.result {
                    Ok(_) => {
                        tally.committed += 1;
                        record_latency(&mut tally, is_write, submitted.elapsed());
                    }
                    Err(_) => tally.aborts += 1,
                }
            }
        }

        // Prefer a due retry; otherwise (or if none is due yet) generate a
        // fresh transaction, unless the retry queue is saturated.
        let now = Instant::now();
        let due_idx = retries.iter().position(|r| r.due <= now);
        let (proc, is_write, submitted, attempts) = match due_idx {
            Some(idx) => {
                let entry = retries.swap_remove(idx);
                (entry.proc, entry.is_write, entry.submitted, entry.attempts)
            }
            None if retries.len() >= max_pending_retries => {
                // Saturated: wait for the earliest retry to become due.
                let earliest = retries.iter().map(|r| r.due).min().expect("non-empty");
                let wait = earliest.saturating_duration_since(now);
                if !wait.is_zero() {
                    std::thread::sleep(wait.min(Duration::from_millis(1)));
                }
                continue;
            }
            None => {
                let txn = generator.next_txn();
                (txn.proc, txn.is_write, Instant::now(), 0)
            }
        };

        match handle.execute(Arc::clone(&proc)) {
            Outcome::Committed(_) => {
                tally.committed += 1;
                record_latency(&mut tally, is_write, submitted.elapsed());
            }
            Outcome::Stashed(ticket) => {
                tally.stashed += 1;
                stashed.insert(ticket, (submitted, is_write));
            }
            Outcome::Aborted(e) if e.is_retryable() => {
                tally.aborts += 1;
                let attempts = attempts + 1;
                retries.push(RetryEntry {
                    proc,
                    is_write,
                    submitted,
                    attempts,
                    due: Instant::now() + backoff_delay(attempts),
                });
            }
            Outcome::Aborted(doppel_common::TxError::Shutdown) => break,
            Outcome::Aborted(_) => {
                // User aborts and type errors are not retried.
                tally.aborts += 1;
            }
        }
    }

    // Drain remaining completions once more so stashed transactions that
    // finished just before the stop flag are counted.
    for completion in handle.take_completions() {
        if let Some((submitted, is_write)) = stashed.remove(&completion.ticket) {
            if completion.result.is_ok() {
                tally.committed += 1;
                record_latency(&mut tally, is_write, submitted.elapsed());
            } else {
                tally.aborts += 1;
            }
        }
    }
    tally
}

fn record_latency(tally: &mut WorkerTally, is_write: bool, latency: Duration) {
    if is_write {
        tally.writes.record(latency);
    } else {
        tally.reads.record(latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{Key, ProcedureFn, Value};

    /// A trivial workload: every transaction increments one of `keys` keys
    /// chosen round-robin, so any engine can run it without conflicts.
    struct RoundRobin {
        keys: u64,
    }

    struct RoundRobinGen {
        keys: u64,
        next: u64,
    }

    impl Workload for RoundRobin {
        fn name(&self) -> String {
            "round-robin".into()
        }

        fn load(&self, engine: &dyn Engine) {
            for k in 0..self.keys {
                engine.load(Key::raw(k), Value::Int(0));
            }
        }

        fn generator(&self, core: usize, _seed: u64) -> Box<dyn TxnGenerator> {
            Box::new(RoundRobinGen { keys: self.keys, next: core as u64 })
        }
    }

    impl TxnGenerator for RoundRobinGen {
        fn next_txn(&mut self) -> GeneratedTxn {
            let key = self.next % self.keys;
            self.next += 7;
            GeneratedTxn {
                proc: Arc::new(ProcedureFn::new("rr-incr", move |tx| tx.add(Key::raw(key), 1))),
                is_write: true,
            }
        }
    }

    #[test]
    fn driver_reports_consistent_totals_on_occ() {
        let engine = doppel_occ::OccEngine::new(2, 64);
        let workload = RoundRobin { keys: 1024 };
        let options = BenchOptions::new(2, Duration::from_millis(100));
        let result = Driver::run(&engine, &workload, &options);
        assert_eq!(result.engine, "OCC");
        assert!(result.committed > 0);
        assert!(result.throughput > 0.0);
        assert_eq!(result.workers, 2);
        // Every committed increment must be in the store.
        let mut total = 0i64;
        for k in 0..1024 {
            total += engine.global_get(Key::raw(k)).unwrap().as_int().unwrap();
        }
        assert_eq!(total as u64, result.committed);
        // Latency was recorded for every committed write.
        assert_eq!(result.write_latency.count, result.committed);
        assert_eq!(result.read_latency.count, 0);
        // The run went through the submission queues (retried aborts
        // re-enqueue, so enqueued can exceed commits).
        assert!(result.engine_stats.queue_enqueued >= result.committed);
        assert!(result.engine_stats.queue_batches > 0);
        assert_eq!(result.engine_stats.queue_depth, 0, "queues drained at shutdown");
    }

    #[test]
    fn direct_driver_reports_consistent_totals_on_occ() {
        let engine = doppel_occ::OccEngine::new(2, 64);
        let workload = RoundRobin { keys: 1024 };
        let options = BenchOptions::new(2, Duration::from_millis(100));
        let result = Driver::run_direct(&engine, &workload, &options);
        assert!(result.committed > 0);
        let mut total = 0i64;
        for k in 0..1024 {
            total += engine.global_get(Key::raw(k)).unwrap().as_int().unwrap();
        }
        assert_eq!(total as u64, result.committed);
        // The direct path never touches a submission queue.
        assert_eq!(result.engine_stats.queue_enqueued, 0);
    }

    #[test]
    fn driver_runs_doppel_with_coordinator() {
        let cfg = doppel_common::DoppelConfig {
            workers: 2,
            phase_len: Duration::from_millis(5),
            split_min_conflicts: 1,
            split_conflict_fraction: 0.0,
            ..Default::default()
        };
        let engine = doppel_db::DoppelDb::start(cfg);
        let workload = RoundRobin { keys: 8 };
        let options = BenchOptions::new(2, Duration::from_millis(120));
        let result = Driver::run(&engine, &workload, &options);
        assert!(result.committed > 0, "Doppel committed nothing");
        let mut total = 0i64;
        for k in 0..8 {
            total += engine.global_get(Key::raw(k)).unwrap().as_int().unwrap();
        }
        assert_eq!(
            total as u64, result.committed,
            "all committed increments must be reconciled into the store"
        );
    }

    #[test]
    fn backoff_grows_and_saturates() {
        assert!(backoff_delay(1) < backoff_delay(4));
        assert_eq!(backoff_delay(12), backoff_delay(30));
        assert!(backoff_delay(30) <= Duration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "workers")]
    fn too_many_workers_panics() {
        let engine = doppel_occ::OccEngine::new(1, 16);
        let workload = RoundRobin { keys: 8 };
        let options = BenchOptions::new(4, Duration::from_millis(10));
        let _ = Driver::run(&engine, &workload, &options);
    }

    #[test]
    #[should_panic(expected = "workers")]
    fn too_many_workers_panics_direct() {
        let engine = doppel_occ::OccEngine::new(1, 16);
        let workload = RoundRobin { keys: 8 };
        let options = BenchOptions::new(4, Duration::from_millis(10));
        let _ = Driver::run_direct(&engine, &workload, &options);
    }
}
