//! Tests of the benchmark driver's retry, stash-completion and latency
//! accounting paths, using a scripted mock engine so the behaviours are
//! deterministic.

use doppel_common::{
    Completion, CoreId, Engine, Key, Outcome, Procedure, StatsSnapshot, Ticket, Tid, TxError,
    TxHandle, Value,
};
use doppel_workloads::driver::{BenchOptions, Driver, GeneratedTxn, TxnGenerator, Workload};
use doppel_workloads::report::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A mock engine whose handles follow a script: abort the first `abort_every`
/// submissions of each transaction, stash every `stash_every`-th transaction
/// and complete it at the next execute call, commit everything else.
struct ScriptedEngine {
    aborts_before_commit: u32,
    stash_every: u64,
    commits: Arc<AtomicU64>,
}

impl ScriptedEngine {
    fn new(aborts_before_commit: u32, stash_every: u64) -> Self {
        ScriptedEngine { aborts_before_commit, stash_every, commits: Arc::new(AtomicU64::new(0)) }
    }
}

impl Engine for ScriptedEngine {
    fn name(&self) -> &'static str {
        "Scripted"
    }
    fn workers(&self) -> usize {
        1
    }
    fn handle(&self, core: CoreId) -> Box<dyn TxHandle> {
        Box::new(ScriptedHandle {
            core,
            stash_every: self.stash_every,
            commits: Arc::clone(&self.commits),
            seen: 0,
            attempts_left: self.aborts_before_commit,
            pending: Vec::new(),
            next_ticket: 0,
            tid: 0,
        })
    }
    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot { commits: self.commits.load(Ordering::Relaxed), ..Default::default() }
    }
    fn global_get(&self, _k: Key) -> Option<Value> {
        None
    }
    fn load(&self, _k: Key, _v: Value) {}
}

struct ScriptedHandle {
    core: CoreId,
    stash_every: u64,
    commits: Arc<AtomicU64>,
    seen: u64,
    attempts_left: u32,
    pending: Vec<Ticket>,
    next_ticket: u64,
    tid: u64,
}

impl TxHandle for ScriptedHandle {
    fn core(&self) -> CoreId {
        self.core
    }

    fn execute(&mut self, _proc: Arc<dyn Procedure>) -> Outcome {
        self.seen += 1;
        // Abort the first `aborts_before_commit` submissions overall, forcing
        // the driver through its retry-with-backoff path.
        if self.attempts_left > 0 {
            self.attempts_left -= 1;
            return Outcome::Aborted(TxError::Conflict { key: Key::raw(0) });
        }
        if self.stash_every > 0 && self.seen.is_multiple_of(self.stash_every) {
            self.next_ticket += 1;
            let ticket = Ticket(self.next_ticket);
            self.pending.push(ticket);
            return Outcome::Stashed(ticket);
        }
        self.tid += 1;
        self.commits.fetch_add(1, Ordering::Relaxed);
        Outcome::Committed(Tid::from_parts(self.tid, self.core))
    }

    fn safepoint(&mut self) {}

    fn take_completions(&mut self) -> Vec<Completion> {
        let completions = self
            .pending
            .drain(..)
            .map(|ticket| {
                self.tid += 1;
                self.commits.fetch_add(1, Ordering::Relaxed);
                Completion { ticket, result: Ok(Tid::from_parts(self.tid, self.core)) }
            })
            .collect();
        completions
    }
}

/// A workload whose transactions do nothing (the scripted engine ignores
/// them); half are flagged as reads for latency-bucket accounting.
struct NoopWorkload;

struct NoopGenerator {
    n: u64,
}

impl Workload for NoopWorkload {
    fn name(&self) -> String {
        "noop".into()
    }
    fn load(&self, _engine: &dyn Engine) {}
    fn generator(&self, _core: usize, _seed: u64) -> Box<dyn TxnGenerator> {
        Box::new(NoopGenerator { n: 0 })
    }
}

struct NoopProc;
impl Procedure for NoopProc {
    fn run(&self, _tx: &mut dyn doppel_common::Tx) -> Result<(), TxError> {
        Ok(())
    }
}

impl TxnGenerator for NoopGenerator {
    fn next_txn(&mut self) -> GeneratedTxn {
        self.n += 1;
        GeneratedTxn { proc: Arc::new(NoopProc), is_write: self.n.is_multiple_of(2) }
    }
}

#[test]
fn driver_retries_aborted_transactions_and_counts_once() {
    let engine = ScriptedEngine::new(5, 0);
    let result = Driver::run(&engine, &NoopWorkload, &BenchOptions::new(1, Duration::from_millis(60)));
    // The 5 scripted aborts were retried (counted as aborts), and every
    // commit is counted exactly once.
    assert_eq!(result.aborts, 5);
    assert_eq!(result.committed, engine.stats().commits);
    assert!(result.committed > 0);
    assert_eq!(result.engine, "Scripted");
}

#[test]
fn driver_accounts_stashed_completions_with_latency() {
    let engine = ScriptedEngine::new(0, 10);
    let result =
        Driver::run(&engine, &NoopWorkload, &BenchOptions::new(1, Duration::from_millis(60)));
    assert!(result.stashed > 0, "every 10th transaction is stashed");
    // Stashed transactions complete via take_completions and are counted as
    // commits; the total must match the engine's own commit counter.
    assert_eq!(result.committed, engine.stats().commits);
    // Latencies were recorded for both reads and writes.
    assert!(result.read_latency.count > 0);
    assert!(result.write_latency.count > 0);
    assert_eq!(
        result.read_latency.count + result.write_latency.count,
        result.committed,
        "every committed transaction is in exactly one latency bucket"
    );
}

#[test]
fn per_core_throughput_divides_by_workers() {
    let engine = ScriptedEngine::new(0, 0);
    let result =
        Driver::run(&engine, &NoopWorkload, &BenchOptions::new(1, Duration::from_millis(40)));
    let per_core = result.per_core_throughput();
    assert!((per_core - result.throughput).abs() < 1e-9, "one worker: per-core == total");
    // Serialisation of the result (used by --out) round-trips.
    let json = serde_json::to_string(&result).unwrap();
    let back: doppel_workloads::driver::BenchResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.committed, result.committed);
    // Cell conversion helpers accept the throughput.
    let _ = Cell::Mtps(result.throughput);
}
