//! The background coordinator thread (§5.4).
//!
//! "The Doppel coordinator usually starts a phase change every 20
//! milliseconds, but feedback mechanisms allow it to flexibly adjust to the
//! workload. If, in a joined phase, no records appear contended — or they
//! contend on unsplittable operations — the coordinator delays the next
//! split phase. … Finally, if, in a split phase, workers have to abort and
//! stash too many transactions, the coordinator hurries the next joined
//! phase."
//!
//! The coordinator only *initiates* transitions; the release itself is
//! performed by the last worker to acknowledge (see [`crate::phase`]).

use crate::phase::Phase;
use crate::shared::DoppelShared;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Granularity at which the coordinator polls for shutdown and feedback.
const POLL_INTERVAL: Duration = Duration::from_micros(500);

/// Runs the coordinator loop until shutdown is requested. Intended to be the
/// body of a dedicated thread spawned by [`crate::DoppelDb::spawn_coordinator`].
pub fn run(shared: Arc<DoppelShared>) {
    while !shared.is_shutdown() {
        // Re-read every cycle: the adaptive tuner may steer the phase length
        // between its configured bounds while the engine runs.
        let phase_len = shared.phase_len();
        // ---- Joined phase ----
        sleep_observing_shutdown(&shared, phase_len);
        if shared.is_shutdown() {
            break;
        }
        if !should_start_split(&shared) {
            // Delay the split phase; re-examine after another phase length.
            continue;
        }

        // ---- Transition joined → split ----
        let seq = shared.phase.request(Phase::Split);
        if !wait_for_release(&shared, seq) {
            break;
        }

        // If classification produced an empty split set there is nothing to
        // do in a split phase; go straight back to joined.
        if !shared.registry.current().is_empty() {
            run_split_phase(&shared, phase_len);
            if shared.is_shutdown() {
                break;
            }
        }

        // ---- Transition split → joined ----
        let seq = shared.phase.request(Phase::Joined);
        if !wait_for_release(&shared, seq) {
            break;
        }
    }
}

/// Decides whether contention justifies a split phase. Splitting is worth it
/// when records are already split (they need split phases to keep absorbing
/// writes) or when the joined phase accumulated conflicts on splittable
/// operations.
fn should_start_split(shared: &DoppelShared) -> bool {
    if !shared.config.enable_splitting {
        return false;
    }
    if !shared.config.feedback.delay_split_when_uncontended {
        return true;
    }
    if shared.classifier.lock().split_count() > 0 {
        return true;
    }
    // The live (possibly tuned) threshold, not the configured one.
    shared.splittable_conflicts.load(Ordering::Relaxed)
        >= shared.split_gate_conflicts.load(Ordering::Relaxed)
}

/// Lets the split phase run for `phase_len`, ending it early when the stash
/// fraction exceeds the configured threshold ("hurry the next joined phase").
fn run_split_phase(shared: &DoppelShared, phase_len: Duration) {
    let start = Instant::now();
    let min_split = phase_len.mul_f64(shared.config.feedback.min_split_fraction);
    loop {
        std::thread::sleep(POLL_INTERVAL);
        if shared.is_shutdown() {
            return;
        }
        let elapsed = start.elapsed();
        if elapsed >= phase_len {
            return;
        }
        if elapsed >= min_split {
            let committed = shared.phase_committed.load(Ordering::Relaxed);
            let stashed = shared.phase_stashed.load(Ordering::Relaxed);
            let total = committed + stashed;
            if total > 128
                && stashed as f64
                    > shared.config.feedback.hurry_joined_stash_fraction * total as f64
            {
                return;
            }
        }
    }
}

/// Sleeps for `duration`, waking early on shutdown.
fn sleep_observing_shutdown(shared: &DoppelShared, duration: Duration) {
    let start = Instant::now();
    while start.elapsed() < duration {
        if shared.is_shutdown() {
            return;
        }
        std::thread::sleep(POLL_INTERVAL.min(duration));
    }
}

/// Waits until transition `seq` has been released (by the last acknowledging
/// worker). Returns `false` if shutdown was requested while waiting.
fn wait_for_release(shared: &DoppelShared, seq: u64) -> bool {
    loop {
        if shared.phase.released_seq() >= seq {
            return true;
        }
        if shared.is_shutdown() {
            return false;
        }
        // The coordinator cannot complete the transition itself (workers must
        // acknowledge first), but calling this is harmless and covers the
        // case where the last acknowledgement raced with our check.
        shared.try_complete_transition();
        std::thread::sleep(POLL_INTERVAL);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::DoppelConfig;

    #[test]
    fn split_decision_follows_feedback_rules() {
        let mut cfg = DoppelConfig::with_workers(1);
        cfg.split_min_conflicts = 10;
        let shared = DoppelShared::new(cfg);
        // Nothing contended, nothing split → delay.
        assert!(!should_start_split(&shared));
        // Contention on splittable operations → go.
        shared.splittable_conflicts.store(50, Ordering::Relaxed);
        assert!(should_start_split(&shared));
        // Already-split records keep split phases coming even without fresh
        // conflicts.
        shared.splittable_conflicts.store(0, Ordering::Relaxed);
        shared
            .classifier
            .lock()
            .label_split(doppel_common::Key::raw(1), doppel_common::OpKind::Add);
        assert!(should_start_split(&shared));
    }

    #[test]
    fn splitting_disabled_never_starts_split() {
        let mut cfg = DoppelConfig::with_workers(1);
        cfg.enable_splitting = false;
        let shared = DoppelShared::new(cfg);
        shared.splittable_conflicts.store(1_000_000, Ordering::Relaxed);
        assert!(!should_start_split(&shared));
    }

    #[test]
    fn delay_feedback_can_be_disabled() {
        let mut cfg = DoppelConfig::with_workers(1);
        cfg.feedback.delay_split_when_uncontended = false;
        let shared = DoppelShared::new(cfg);
        assert!(should_start_split(&shared), "without the delay rule, split phases always run");
    }

    #[test]
    fn sleep_observes_shutdown_quickly() {
        let shared = Arc::new(DoppelShared::new(DoppelConfig::with_workers(1)));
        shared.request_shutdown();
        let start = Instant::now();
        sleep_observing_shutdown(&shared, Duration::from_secs(5));
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn wait_for_release_bails_on_shutdown() {
        let shared = Arc::new(DoppelShared::new(DoppelConfig::with_workers(1)));
        shared.phase.register_worker(0);
        let seq = shared.phase.request(Phase::Split);
        shared.request_shutdown();
        assert!(!wait_for_release(&shared, seq));
    }
}
