//! The set of currently split records and their selected operations.
//!
//! "The system selects one splittable operation per split record per split
//! phase. The selected operation can change between phases … but within a
//! given phase, any operation but the selected operation causes the
//! containing transaction to abort (and retry in the next joined phase)."
//! (§4, guideline 3)
//!
//! A [`SplitSet`] is an immutable snapshot valid for one split phase. The
//! [`SplitRegistry`] holds the snapshot that the *next* (or current) split
//! phase uses; it is rebuilt by the classifier during each joined→split
//! transition and read (via a cheap `Arc` clone) by every worker when it
//! enters the split phase.
//!
//! Which operations *may* be selected is an open set: the splittable
//! operations themselves are [`SplitOp`] implementations held in a
//! [`SplitOpRegistry`] (re-exported here from `doppel_common::split_op`,
//! where the baseline engines share the same semantics). The split set
//! validates its decisions against that registry, so a freshly registered
//! operation becomes selectable without touching this module.

use doppel_common::{split_ops, Key, OpKind};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

pub use doppel_common::split_op::{SplitOp, SplitOpRegistry};

/// Immutable snapshot of split decisions for one split phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SplitSet {
    selected: HashMap<Key, OpKind>,
}

impl SplitSet {
    /// An empty split set (nothing is split).
    pub fn empty() -> Arc<SplitSet> {
        Arc::new(SplitSet::default())
    }

    /// Builds a split set from `(key, selected operation)` decisions.
    ///
    /// # Panics
    ///
    /// Debug-asserts that every selected operation has a registered
    /// [`SplitOp`] implementation.
    pub fn from_decisions(decisions: impl IntoIterator<Item = (Key, OpKind)>) -> SplitSet {
        let selected: HashMap<Key, OpKind> = decisions.into_iter().collect();
        debug_assert!(
            selected.values().all(|op| split_ops().is_splittable(*op)),
            "split set contains an unsplittable operation"
        );
        SplitSet { selected }
    }

    /// The selected operation for `key`, or `None` if the key is not split.
    pub fn selected_op(&self, key: &Key) -> Option<OpKind> {
        self.selected.get(key).copied()
    }

    /// True if `key` is split in this phase.
    pub fn is_split(&self, key: &Key) -> bool {
        self.selected.contains_key(key)
    }

    /// Number of split records.
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// True when nothing is split.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }

    /// Iterates over `(key, selected operation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &OpKind)> {
        self.selected.iter()
    }
}

/// Holder of the split set used by the current / next split phase.
#[derive(Debug)]
pub struct SplitRegistry {
    current: RwLock<Arc<SplitSet>>,
}

impl SplitRegistry {
    /// Creates a registry with an empty split set.
    pub fn new() -> Self {
        SplitRegistry { current: RwLock::new(SplitSet::empty()) }
    }

    /// The split set workers should use for the split phase they are
    /// entering.
    pub fn current(&self) -> Arc<SplitSet> {
        Arc::clone(&self.current.read())
    }

    /// Installs a new split set (called during the joined→split transition,
    /// before the transition is released).
    pub fn install(&self, set: SplitSet) {
        *self.current.write() = Arc::new(set);
    }
}

impl Default for SplitRegistry {
    fn default() -> Self {
        SplitRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        let s = SplitSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.is_split(&Key::raw(1)));
        assert_eq!(s.selected_op(&Key::raw(1)), None);
    }

    #[test]
    fn decisions_are_queryable() {
        let s = SplitSet::from_decisions([
            (Key::raw(1), OpKind::Add),
            (Key::raw(2), OpKind::Max),
        ]);
        assert_eq!(s.len(), 2);
        assert!(s.is_split(&Key::raw(1)));
        assert_eq!(s.selected_op(&Key::raw(1)), Some(OpKind::Add));
        assert_eq!(s.selected_op(&Key::raw(2)), Some(OpKind::Max));
        assert_eq!(s.selected_op(&Key::raw(3)), None);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn registry_swaps_snapshots() {
        let reg = SplitRegistry::new();
        let before = reg.current();
        assert!(before.is_empty());
        reg.install(SplitSet::from_decisions([(Key::raw(7), OpKind::Add)]));
        let after = reg.current();
        assert!(after.is_split(&Key::raw(7)));
        // The old snapshot is unaffected (workers mid-phase keep their view).
        assert!(before.is_empty());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "unsplittable")]
    fn unsplittable_decision_panics_in_debug() {
        let _ = SplitSet::from_decisions([(Key::raw(1), OpKind::Put)]);
    }
}
