//! The Doppel transaction context for joined and split phases.
//!
//! * In a **joined** phase every access goes through plain OCC (§5.1) — the
//!   context simply wraps [`OccTx`].
//! * In a **split** phase, accesses to records in the current [`SplitSet`]
//!   are special (§5.2): the selected operation is buffered in the *split
//!   write set* `SW` and applied to the worker's per-core slices only if the
//!   OCC part of the commit succeeds (Figure 3); any other access to a split
//!   record — a read, or a non-selected operation — fails with
//!   [`TxError::Stash`], telling the worker to stash the transaction until
//!   the next joined phase.
//!
//! The context also records which operation kind the transaction *intended*
//! for each key it touched; when a commit aborts on a conflict, the worker
//! uses the intent to attribute the conflict to an operation for the
//! classifier (§5.5: "which records are most conflicted … and by which
//! operations").

use crate::split_registry::SplitSet;
use doppel_common::{CoreId, Key, Op, OpKind, Tid, TidGenerator, TxError, Value};
use doppel_occ::{OccTx, ReadSet, WriteSet};
use doppel_store::Store;
use std::sync::Arc;

/// Execution mode of a [`DoppelTx`].
enum TxMode {
    /// Joined phase: everything is reconciled, plain OCC.
    Joined,
    /// Split phase: accesses to records in the split set are restricted.
    Split {
        /// Split decisions for the current split phase.
        split_set: Arc<SplitSet>,
    },
}

/// The reusable buffers of a [`DoppelTx`]: the OCC read/write sets plus the
/// split write set and intent list. [`crate::DoppelWorker`] pools one of
/// these across transactions so steady-state execution allocates no
/// per-transaction bookkeeping.
#[derive(Default)]
pub struct TxBuffers {
    read_set: ReadSet,
    write_set: WriteSet,
    split_writes: Vec<(Key, Op)>,
    intents: Vec<(Key, OpKind)>,
}

/// A running Doppel transaction.
pub struct DoppelTx<'s> {
    occ: OccTx<'s>,
    mode: TxMode,
    /// Split write set `SW` (Figure 3): operations on split records, applied
    /// to per-core slices after the OCC commit succeeds.
    split_writes: Vec<(Key, Op)>,
    /// Operation kinds this transaction attempted per key, newest last.
    intents: Vec<(Key, OpKind)>,
}

impl<'s> DoppelTx<'s> {
    /// Starts a joined-phase transaction.
    pub fn joined(store: &'s Store, core: CoreId) -> Self {
        Self::joined_with(store, core, TxBuffers::default())
    }

    /// [`DoppelTx::joined`] reusing pooled buffers (cleared here).
    pub fn joined_with(store: &'s Store, core: CoreId, bufs: TxBuffers) -> Self {
        let mut split_writes = bufs.split_writes;
        let mut intents = bufs.intents;
        split_writes.clear();
        intents.clear();
        DoppelTx {
            occ: OccTx::from_parts(store, core, bufs.read_set, bufs.write_set),
            mode: TxMode::Joined,
            split_writes,
            intents,
        }
    }

    /// Starts a split-phase transaction restricted by `split_set`.
    pub fn split(store: &'s Store, core: CoreId, split_set: Arc<SplitSet>) -> Self {
        Self::split_with(store, core, split_set, TxBuffers::default())
    }

    /// [`DoppelTx::split`] reusing pooled buffers (cleared here).
    pub fn split_with(
        store: &'s Store,
        core: CoreId,
        split_set: Arc<SplitSet>,
        bufs: TxBuffers,
    ) -> Self {
        let mut split_writes = bufs.split_writes;
        let mut intents = bufs.intents;
        split_writes.clear();
        intents.clear();
        DoppelTx {
            occ: OccTx::from_parts(store, core, bufs.read_set, bufs.write_set),
            mode: TxMode::Split { split_set },
            split_writes,
            intents,
        }
    }

    /// Recovers the internal buffers (capacity intact, contents cleared) for
    /// reuse by the next transaction on this worker.
    pub fn into_buffers(mut self) -> TxBuffers {
        let (mut read_set, mut write_set) = self.occ.into_sets();
        // Clear eagerly so pooled `Arc<Record>` handles don't keep records
        // alive between transactions.
        read_set.clear();
        write_set.clear();
        self.split_writes.clear();
        self.intents.clear();
        TxBuffers { read_set, write_set, split_writes: self.split_writes, intents: self.intents }
    }

    fn note_intent(&mut self, key: Key, op: OpKind) {
        self.intents.push((key, op));
    }

    /// The operation kind this transaction attempted on `key`, preferring
    /// write operations over reads (a conflict on a key that was both read
    /// and written is attributed to the write, which is what the classifier
    /// can act on).
    pub fn intent_for(&self, key: &Key) -> OpKind {
        let mut found = OpKind::Get;
        for (k, op) in &self.intents {
            // Writes always take precedence; a read only registers while no
            // write has been seen yet.
            if k == key && (op.is_write() || found == OpKind::Get) {
                found = *op;
            }
        }
        found
    }

    /// Commits the reconciled (OCC) part of the transaction.
    pub fn commit_occ(&mut self, tid_gen: &mut TidGenerator) -> Result<Tid, TxError> {
        self.occ.commit(tid_gen)
    }

    /// [`DoppelTx::commit_occ`] with write-ahead logging of the reconciled
    /// write set. Split writes are deliberately **not** logged here — they
    /// become merged-delta records at reconciliation (the paper's O(split
    /// keys) logging fast path).
    pub fn commit_occ_durable(
        &mut self,
        tid_gen: &mut TidGenerator,
        sink: Option<&dyn doppel_common::CommitSink>,
    ) -> Result<(Tid, doppel_common::LogReceipt), TxError> {
        self.occ.commit_durable(tid_gen, sink)
    }

    /// Takes the buffered split writes (to apply to per-core slices after a
    /// successful OCC commit).
    pub fn take_split_writes(&mut self) -> Vec<(Key, Op)> {
        std::mem::take(&mut self.split_writes)
    }

    /// Drains the buffered split writes in place, keeping the buffer's
    /// allocation (preferred over [`DoppelTx::take_split_writes`] when the
    /// transaction's buffers are pooled).
    pub fn drain_split_writes(&mut self) -> std::vec::Drain<'_, (Key, Op)> {
        self.split_writes.drain(..)
    }

    /// Number of split writes buffered so far.
    pub fn split_write_count(&self) -> usize {
        self.split_writes.len()
    }

    /// True if this transaction runs in a split phase.
    pub fn is_split_phase(&self) -> bool {
        matches!(self.mode, TxMode::Split { .. })
    }
}

impl doppel_common::Tx for DoppelTx<'_> {
    fn core(&self) -> CoreId {
        self.occ.core()
    }

    fn get(&mut self, k: Key) -> Result<Option<Value>, TxError> {
        if let TxMode::Split { split_set } = &self.mode {
            if split_set.is_split(&k) {
                // Split data cannot be read during a split phase; the
                // transaction blocks (is stashed) until the next joined
                // phase (§4, §5.2).
                return Err(TxError::Stash { key: k, attempted: OpKind::Get });
            }
        }
        self.note_intent(k, OpKind::Get);
        self.occ.get(k)
    }

    fn write_op(&mut self, k: Key, op: Op) -> Result<(), TxError> {
        if let TxMode::Split { split_set } = &self.mode {
            if let Some(selected) = split_set.selected_op(&k) {
                let kind = op.kind();
                if kind == selected {
                    // The fast path that phase reconciliation exists for:
                    // buffer the operation for the per-core slice; no global
                    // coordination.
                    self.split_writes.push((k, op));
                    return Ok(());
                }
                // Any operation other than the selected one aborts the
                // transaction for restart in the next joined phase.
                return Err(TxError::Stash { key: k, attempted: kind });
            }
        }
        self.note_intent(k, op.kind());
        self.occ.write_op(k, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split_registry::SplitSet;
    use doppel_common::Tx;

    fn store() -> Store {
        let s = Store::new(16);
        for i in 0..10 {
            s.load(Key::raw(i), Value::Int(0));
        }
        s
    }

    fn split_on_add(key: u64) -> Arc<SplitSet> {
        Arc::new(SplitSet::from_decisions([(Key::raw(key), OpKind::Add)]))
    }

    #[test]
    fn joined_mode_behaves_like_occ() {
        let s = store();
        let mut gen = TidGenerator::new(0);
        let mut tx = DoppelTx::joined(&s, 0);
        assert!(!tx.is_split_phase());
        tx.add(Key::raw(1), 5).unwrap();
        assert_eq!(tx.get(Key::raw(1)).unwrap(), Some(Value::Int(5)));
        tx.commit_occ(&mut gen).unwrap();
        assert_eq!(s.read_unlocked(&Key::raw(1)), Some(Value::Int(5)));
        assert!(tx.take_split_writes().is_empty());
    }

    #[test]
    fn split_mode_buffers_selected_op() {
        let s = store();
        let mut gen = TidGenerator::new(0);
        let mut tx = DoppelTx::split(&s, 0, split_on_add(1));
        assert!(tx.is_split_phase());
        tx.add(Key::raw(1), 5).unwrap();
        tx.add(Key::raw(2), 7).unwrap(); // not split → OCC path
        assert_eq!(tx.split_write_count(), 1);
        tx.commit_occ(&mut gen).unwrap();
        // The split write did NOT touch the global store.
        assert_eq!(s.read_unlocked(&Key::raw(1)), Some(Value::Int(0)));
        assert_eq!(s.read_unlocked(&Key::raw(2)), Some(Value::Int(7)));
        let sw = tx.take_split_writes();
        assert_eq!(sw, vec![(Key::raw(1), Op::Add(5))]);
    }

    #[test]
    fn split_mode_stashes_reads_of_split_data() {
        let s = store();
        let mut tx = DoppelTx::split(&s, 0, split_on_add(1));
        let err = tx.get(Key::raw(1)).unwrap_err();
        assert_eq!(err, TxError::Stash { key: Key::raw(1), attempted: OpKind::Get });
        // Reads of non-split data are fine.
        assert_eq!(tx.get(Key::raw(2)).unwrap(), Some(Value::Int(0)));
    }

    #[test]
    fn split_mode_stashes_non_selected_ops() {
        let s = store();
        let mut tx = DoppelTx::split(&s, 0, split_on_add(1));
        let err = tx.max(Key::raw(1), 10).unwrap_err();
        assert_eq!(err, TxError::Stash { key: Key::raw(1), attempted: OpKind::Max });
        let err = tx.put(Key::raw(1), Value::Int(1)).unwrap_err();
        assert_eq!(err, TxError::Stash { key: Key::raw(1), attempted: OpKind::Put });
    }

    #[test]
    fn intents_are_recorded_and_prefer_writes() {
        let s = store();
        let mut tx = DoppelTx::joined(&s, 0);
        tx.get(Key::raw(3)).unwrap();
        assert_eq!(tx.intent_for(&Key::raw(3)), OpKind::Get);
        tx.add(Key::raw(3), 1).unwrap();
        assert_eq!(tx.intent_for(&Key::raw(3)), OpKind::Add);
        tx.get(Key::raw(3)).unwrap();
        assert_eq!(tx.intent_for(&Key::raw(3)), OpKind::Add, "write intent wins over later read");
        assert_eq!(tx.intent_for(&Key::raw(99)), OpKind::Get, "unknown keys default to Get");
    }

    #[test]
    fn split_writes_are_isolated_from_occ_abort() {
        // If the OCC part of a split-phase transaction aborts, the caller
        // never applies the split writes: they stay buffered in the tx.
        let s = store();
        let mut gen0 = TidGenerator::new(0);
        let mut gen1 = TidGenerator::new(1);

        let mut tx = DoppelTx::split(&s, 0, split_on_add(1));
        tx.add(Key::raw(1), 5).unwrap(); // split write
        tx.add(Key::raw(2), 1).unwrap(); // OCC read-modify-write

        // A concurrent transaction commits to key 2, invalidating the read.
        let mut other = DoppelTx::joined(&s, 1);
        other.add(Key::raw(2), 100).unwrap();
        other.commit_occ(&mut gen1).unwrap();

        let err = tx.commit_occ(&mut gen0).unwrap_err();
        assert_eq!(err, TxError::Conflict { key: Key::raw(2) });
        // The worker checks commit success before applying split writes, so
        // nothing leaked into the global store or slices.
        assert_eq!(s.read_unlocked(&Key::raw(1)), Some(Value::Int(0)));
        assert_eq!(s.read_unlocked(&Key::raw(2)), Some(Value::Int(100)));
    }
}
