//! Doppel worker: the per-core execution handle.
//!
//! "Doppel runs one worker thread per core" (§6). A worker:
//!
//! * executes transactions in the current phase (joined = OCC, split =
//!   OCC + per-core slices);
//! * checks the global phase variable between transactions, acknowledges
//!   pending transitions, merges its slices when leaving a split phase
//!   (reconciliation, Figure 4) and drains its stash when entering a joined
//!   phase;
//! * samples conflicts, slice writes and stashes for the classifier;
//! * stashes transactions that touch split data incompatibly and replays
//!   them in the next joined phase.

use crate::phase::Phase;
use crate::shared::DoppelShared;
use crate::slices::Slice;
use crate::split_registry::SplitSet;
use crate::txn::{DoppelTx, TxBuffers};
use doppel_common::{
    CommitSink, Completion, CoreId, EngineStats, Key, Outcome, Procedure, Ticket, TidGenerator,
    TxError, TxHandle,
};
use doppel_telemetry::trace::{self, EventKind};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Maximum inline retries for a stashed transaction replayed during a joined
/// phase before its failure is reported back to the caller.
const STASH_REPLAY_RETRIES: u32 = 64;

struct StashedTxn {
    ticket: Ticket,
    proc: Arc<dyn Procedure>,
    /// When the transaction was stashed: its replay completion reports the
    /// full stash-to-resolution latency (the cost a deferred client paid).
    stashed_at: Instant,
}

/// Per-core execution handle of a [`crate::DoppelDb`].
pub struct DoppelWorker {
    core: CoreId,
    shared: Arc<DoppelShared>,
    tid_gen: TidGenerator,
    local_phase: Phase,
    acked_seq: u64,
    split_set: Arc<SplitSet>,
    /// Per-core slices for split records.
    slices: HashMap<Key, Slice>,
    stash: VecDeque<StashedTxn>,
    completions: Vec<Completion>,
    next_ticket: u64,
    /// xorshift state for conflict sampling.
    rng_state: u64,
    /// Durability sink, captured at worker creation so neither the commit
    /// path nor reconciliation reads the shared sink cell (attach the sink
    /// before creating handles).
    sink: Option<Arc<dyn CommitSink>>,
    /// Transaction buffers (OCC sets, split write set, intent list) reused
    /// across transactions so steady-state execution allocates no
    /// per-transaction bookkeeping.
    tx_bufs: TxBuffers,
}

impl DoppelWorker {
    /// Creates the worker for `core` and registers it with the phase
    /// barrier.
    pub fn new(shared: Arc<DoppelShared>, core: CoreId) -> Self {
        shared.phase.register_worker(core);
        DoppelWorker {
            core,
            tid_gen: TidGenerator::new(core),
            local_phase: Phase::Joined,
            acked_seq: 0,
            split_set: SplitSet::empty(),
            slices: HashMap::new(),
            stash: VecDeque::new(),
            completions: Vec::new(),
            next_ticket: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15 ^ ((core as u64 + 1) << 17),
            sink: shared.commit_sink(),
            tx_bufs: TxBuffers::default(),
            shared,
        }
    }

    /// The phase this worker is currently executing in.
    pub fn phase(&self) -> Phase {
        self.local_phase
    }

    /// Number of records with a non-empty slice on this worker.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    fn fresh_ticket(&mut self) -> Ticket {
        self.next_ticket += 1;
        Ticket(((self.core as u64) << 48) | self.next_ticket)
    }

    fn should_sample(&mut self) -> bool {
        let rate = self.shared.config.conflict_sample_rate;
        if rate >= 1.0 {
            return true;
        }
        if rate <= 0.0 {
            return false;
        }
        // xorshift64* — cheap, deterministic per worker.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let r = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        r < rate
    }

    /// Attributes a conflict abort to `(key, op)` for the classifier.
    fn sample_conflict(&mut self, key: Key, op: doppel_common::OpKind) {
        // The heat sketch is unsampled (a few relaxed atomics): the hot-key
        // table should reflect every conflict, not the classifier's sample.
        self.shared.telemetry.heat().record(key.heat_token());
        if self.should_sample() {
            self.shared.samplers[self.core].lock().record_conflict(key, op);
            if op.splittable() {
                self.shared.splittable_conflicts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn record_commit(&mut self) {
        EngineStats::bump(&self.shared.stats.commits);
        self.shared.samplers[self.core].lock().record_commit();
        self.shared.phase_committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs one transaction in joined mode (plain OCC).
    fn run_joined(&mut self, proc: &dyn Procedure) -> Outcome {
        // Hold a local clone of the shared state so the transaction's borrow
        // of the store does not pin `self`.
        let shared = Arc::clone(&self.shared);
        let bufs = std::mem::take(&mut self.tx_bufs);
        let mut tx = DoppelTx::joined_with(&shared.store, self.core, bufs);
        let outcome = match proc.run(&mut tx) {
            Err(e) => self.handle_body_error(&tx, e),
            Ok(()) => match tx.commit_occ_durable(&mut self.tid_gen, self.sink.as_deref()) {
                Ok((tid, receipt)) => {
                    self.shared.stats.absorb_log(&receipt);
                    self.record_commit();
                    Outcome::Committed(tid)
                }
                Err(e) => self.handle_commit_error(&tx, e),
            },
        };
        self.tx_bufs = tx.into_buffers();
        outcome
    }

    /// Runs one transaction in split mode (OCC for reconciled data, per-core
    /// slices for split data).
    fn run_split(&mut self, proc: &Arc<dyn Procedure>) -> Outcome {
        let shared = Arc::clone(&self.shared);
        let bufs = std::mem::take(&mut self.tx_bufs);
        let mut tx =
            DoppelTx::split_with(&shared.store, self.core, Arc::clone(&self.split_set), bufs);
        let outcome = match proc.run(&mut tx) {
            Err(TxError::Stash { key, attempted }) => {
                // Stash the transaction for the next joined phase (§5.2).
                self.shared.samplers[self.core].lock().record_stash(key, attempted);
                EngineStats::bump(&self.shared.stats.stashes);
                self.shared.phase_stashed.fetch_add(1, Ordering::Relaxed);
                let ticket = self.fresh_ticket();
                trace::instant(EventKind::TxnStash, self.core as u64);
                self.stash.push_back(StashedTxn {
                    ticket,
                    proc: Arc::clone(proc),
                    stashed_at: Instant::now(),
                });
                Outcome::Stashed(ticket)
            }
            Err(e) => self.handle_body_error(&tx, e),
            // The OCC (reconciled) part of the write set logs conventionally;
            // split writes are not logged per-operation — each worker emits
            // one merged-delta record per split key at reconciliation
            // instead. A mixed transaction therefore becomes durable in two
            // pieces: its reconciled writes at commit, its split writes when
            // the next reconciliation's delta records reach disk (see the
            // "Durability" section of the README for the contract).
            Ok(()) => match tx.commit_occ_durable(&mut self.tid_gen, self.sink.as_deref()) {
                Ok((tid, receipt)) => {
                    self.shared.stats.absorb_log(&receipt);
                    // Apply the split write set to the per-core slices
                    // (Figure 3, part 3). Slices are invisible to other
                    // cores, so no locks or version checks are needed.
                    for (key, op) in tx.drain_split_writes() {
                        let slice =
                            self.slices.entry(key).or_insert_with(|| Slice::new(op.kind()));
                        slice
                            .apply(&op)
                            .expect("selected operation always matches its slice kind");
                        EngineStats::bump(&self.shared.stats.slice_ops);
                        self.shared.samplers[self.core].lock().record_split_write(key);
                    }
                    self.record_commit();
                    Outcome::Committed(tid)
                }
                Err(e) => self.handle_commit_error(&tx, e),
            },
        };
        self.tx_bufs = tx.into_buffers();
        outcome
    }

    fn handle_body_error(&mut self, tx: &DoppelTx<'_>, e: TxError) -> Outcome {
        match &e {
            TxError::UserAbort { .. } => EngineStats::bump(&self.shared.stats.user_aborts),
            TxError::Conflict { key } | TxError::LockBusy { key } => {
                let intent = tx.intent_for(key);
                self.sample_conflict(*key, intent);
                EngineStats::bump(&self.shared.stats.conflicts);
            }
            _ => EngineStats::bump(&self.shared.stats.user_aborts),
        }
        Outcome::Aborted(e)
    }

    fn handle_commit_error(&mut self, tx: &DoppelTx<'_>, e: TxError) -> Outcome {
        if let TxError::Conflict { key } | TxError::LockBusy { key } = &e {
            let intent = tx.intent_for(key);
            self.sample_conflict(*key, intent);
        }
        EngineStats::bump(&self.shared.stats.conflicts);
        Outcome::Aborted(e)
    }

    /// Merges this worker's slices into the global store (Figure 4): for
    /// every slice, lock the global record, merge-apply, bump the TID and
    /// unlock. Called while acknowledging a split→joined transition.
    ///
    /// Durability rides on this step: with a commit sink attached, the worker
    /// appends **one merged-delta record per split key** — not one record per
    /// split-phase operation — while still holding the record lock. This is
    /// the paper's durability dividend: split-phase logging costs O(split
    /// keys) records per phase instead of O(operations), and split-phase
    /// commit acknowledgements become durable when their reconciliation
    /// deltas reach disk.
    fn reconcile(&mut self) {
        if self.slices.is_empty() {
            return;
        }
        let started = Instant::now();
        // Drain in place (instead of `mem::take`) so the slice map's table
        // allocation survives into the next split phase.
        for (key, slice) in self.slices.drain() {
            let merge_ops = slice.into_merge_ops();
            if merge_ops.is_empty() {
                continue;
            }
            let record = self.shared.store.get_or_create(key);
            record.lock_spin();
            for op in &merge_ops {
                // A type mismatch can only happen if the application wrote a
                // value of a different type to this key outside the split
                // phase; the merge skips such records rather than corrupting
                // them.
                let _ = record.apply_locked(op);
            }
            let tid = self.tid_gen.next_after([record.tid()]);
            if let Some(sink) = &self.sink {
                let receipt = sink.log_merged_delta(tid, key, &merge_ops);
                self.shared.stats.absorb_log(&receipt);
            }
            record.publish_and_unlock(tid);
            EngineStats::bump(&self.shared.stats.slices_merged);
        }
        self.shared.hist_reconcile.record(self.core, started.elapsed());
        trace::span_since(EventKind::Reconcile, self.core as u64, started);
    }

    /// Replays stashed transactions in joined mode ("each worker restarts any
    /// transactions it stashed in the split phase", §5.4). Conflicting
    /// replays are retried a bounded number of times; persistent failures are
    /// reported as completions so the caller can resubmit.
    fn drain_stash(&mut self) {
        if self.stash.is_empty() {
            return;
        }
        // Replay directly off the deque: joined-phase execution never pushes
        // to the stash, so popping while replaying is safe and avoids
        // collecting into a temporary list.
        while let Some(entry) = self.stash.pop_front() {
            let mut attempts = 0u32;
            loop {
                match self.run_joined(entry.proc.as_ref()) {
                    Outcome::Committed(tid) => {
                        EngineStats::bump(&self.shared.stats.stash_commits);
                        self.shared.hist_stash_replay.record(self.core, entry.stashed_at.elapsed());
                        trace::span_since(EventKind::StashReplay, 1, entry.stashed_at);
                        self.completions.push(Completion { ticket: entry.ticket, result: Ok(tid) });
                        break;
                    }
                    Outcome::Aborted(e) if e.is_retryable() && attempts < STASH_REPLAY_RETRIES => {
                        attempts += 1;
                        for _ in 0..(1u32 << attempts.min(6)) {
                            std::hint::spin_loop();
                        }
                    }
                    Outcome::Aborted(e) => {
                        self.shared.hist_stash_replay.record(self.core, entry.stashed_at.elapsed());
                        trace::span_since(EventKind::StashReplay, 0, entry.stashed_at);
                        self.completions
                            .push(Completion { ticket: entry.ticket, result: Err(e) });
                        break;
                    }
                    Outcome::Stashed(_) => {
                        unreachable!("joined-phase execution never stashes")
                    }
                }
            }
        }
    }

    /// The safepoint: observe pending phase transitions, do the pre-ack work
    /// (reconcile / drain), acknowledge, wait for the release and switch the
    /// local phase.
    fn safepoint_inner(&mut self) {
        loop {
            let target = self.shared.phase.target();
            if target.seq <= self.acked_seq {
                return;
            }
            // Pre-acknowledgement work (§5.4):
            match self.local_phase {
                Phase::Split => {
                    // Leaving the split phase: merge per-core slices into the
                    // global store before acknowledging.
                    self.reconcile();
                }
                Phase::Joined => {
                    // Entering a split phase: finish previously stashed
                    // transactions first ("our workers delay acknowledging a
                    // split phase until they have committed or aborted all
                    // previously-stashed transactions").
                    self.drain_stash();
                }
            }
            self.shared.phase.ack(self.core, target.seq);
            self.acked_seq = target.seq;
            // The last worker to acknowledge completes the transition.
            self.shared.try_complete_transition();

            // Wait for permission to proceed.
            while self.shared.phase.released_seq() < target.seq {
                if self.shared.is_shutdown() {
                    return;
                }
                self.shared.try_complete_transition();
                std::thread::yield_now();
            }

            // Enter the new phase.
            self.local_phase = target.phase;
            match target.phase {
                Phase::Split => {
                    self.split_set = self.shared.registry.current();
                    debug_assert!(self.slices.is_empty(), "slices must be empty at split entry");
                }
                Phase::Joined => {
                    // Restart stashed transactions now that the joined phase
                    // has begun.
                    self.drain_stash();
                }
            }
            // Loop: another transition may already be pending.
        }
    }
}

impl Drop for DoppelWorker {
    fn drop(&mut self) {
        // A worker that goes away mid-split-phase must not lose the updates
        // buffered in its slices: merge them (merging early is safe — split
        // records cannot be read by anyone until the next joined phase) and
        // stop blocking phase transitions.
        self.reconcile();
        self.shared.phase.unregister_worker(self.core);
        self.shared.try_complete_transition();
    }
}

impl TxHandle for DoppelWorker {
    fn core(&self) -> CoreId {
        self.core
    }

    fn execute(&mut self, proc: Arc<dyn Procedure>) -> Outcome {
        self.safepoint_inner();
        if self.shared.is_shutdown() {
            return Outcome::Aborted(TxError::Shutdown);
        }
        match self.local_phase {
            Phase::Joined => self.run_joined(proc.as_ref()),
            Phase::Split => self.run_split(&proc),
        }
    }

    fn safepoint(&mut self) {
        self.safepoint_inner();
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    fn stash_len(&self) -> usize {
        self.stash.len()
    }
}

/// Tests for the worker live in the crate-level tests of `db.rs`, which can
/// drive full phase cycles; the unit tests here cover the pieces that do not
/// need a running database.
#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::DoppelConfig;

    #[test]
    fn tickets_are_unique_and_encode_core() {
        let shared = Arc::new(DoppelShared::new(DoppelConfig::with_workers(2)));
        let mut w = DoppelWorker::new(Arc::clone(&shared), 1);
        let a = w.fresh_ticket();
        let b = w.fresh_ticket();
        assert_ne!(a, b);
        assert_eq!(a.0 >> 48, 1);
    }

    #[test]
    fn sampling_rate_extremes() {
        let mut cfg = DoppelConfig::with_workers(1);
        cfg.conflict_sample_rate = 1.0;
        let shared = Arc::new(DoppelShared::new(cfg));
        let mut w = DoppelWorker::new(Arc::clone(&shared), 0);
        assert!(w.should_sample());

        let mut cfg = DoppelConfig::with_workers(1);
        cfg.conflict_sample_rate = 0.0;
        let shared = Arc::new(DoppelShared::new(cfg));
        let mut w = DoppelWorker::new(Arc::clone(&shared), 0);
        assert!(!w.should_sample());
    }

    #[test]
    fn fractional_sampling_is_roughly_proportional() {
        let mut cfg = DoppelConfig::with_workers(1);
        cfg.conflict_sample_rate = 0.25;
        let shared = Arc::new(DoppelShared::new(cfg));
        let mut w = DoppelWorker::new(Arc::clone(&shared), 0);
        let hits = (0..10_000).filter(|_| w.should_sample()).count();
        assert!((1_500..3_500).contains(&hits), "got {hits} samples out of 10000");
    }

    #[test]
    fn new_worker_starts_joined_with_empty_state() {
        let shared = Arc::new(DoppelShared::new(DoppelConfig::with_workers(1)));
        let w = DoppelWorker::new(Arc::clone(&shared), 0);
        assert_eq!(w.phase(), Phase::Joined);
        assert_eq!(w.slice_count(), 0);
        assert_eq!(w.stash_len(), 0);
        assert_eq!(w.core(), 0);
    }
}
