//! State shared between workers, the coordinator and the database facade.

use crate::classify::{Classifier, PhaseSample, WorkerSample};
use crate::phase::{Phase, PhaseState};
use crate::split_registry::SplitRegistry;
use doppel_common::{CommitSink, DoppelConfig, EngineStats};
use doppel_store::Store;
use doppel_telemetry::trace::{self, EventKind};
use doppel_telemetry::{Registry, SharedHistogram};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a Doppel worker or coordinator needs to reach through one
/// `Arc`.
pub struct DoppelShared {
    /// Engine configuration (immutable after construction).
    pub config: DoppelConfig,
    /// The global store (reconciled data).
    pub store: Store,
    /// Monitoring counters.
    pub stats: EngineStats,
    /// Phase transition state (target / acks / release).
    pub phase: PhaseState,
    /// The split set used by the current or next split phase.
    pub registry: SplitRegistry,
    /// Persistent split decisions and the classification logic.
    pub classifier: Mutex<Classifier>,
    /// Per-worker contention samples, drained at every transition.
    pub samplers: Vec<Mutex<WorkerSample>>,
    /// Serialises transition completion (exactly one completer per seq).
    completion_lock: Mutex<()>,
    /// Joined-phase conflicts on splittable operations since the last
    /// transition — the coordinator's "is anything contended?" signal.
    pub splittable_conflicts: AtomicU64,
    /// Transactions committed since the last transition (feedback input).
    pub phase_committed: AtomicU64,
    /// Transactions stashed since the last transition (feedback input).
    pub phase_stashed: AtomicU64,
    /// Set once at shutdown; all wait loops observe it.
    pub shutdown: AtomicBool,
    /// The durability sink, when attached: joined-phase commits log their
    /// write sets through it, and reconciling workers log one merged delta
    /// per split key. `None` keeps the engine volatile (the default).
    pub wal: RwLock<Option<Arc<dyn CommitSink>>>,
    /// The engine's telemetry registry (always on; recording never
    /// allocates). Exposed through [`doppel_common::Engine::telemetry`].
    pub telemetry: Arc<Registry>,
    /// Joined-phase durations, recorded at each joined→split transition.
    pub hist_phase_joined: Arc<SharedHistogram>,
    /// Split-phase durations, recorded at each split→joined transition.
    pub hist_phase_split: Arc<SharedHistogram>,
    /// Per-worker reconciliation (slice-merge) durations.
    pub hist_reconcile: Arc<SharedHistogram>,
    /// Stash-to-replay-completion latency of stashed transactions.
    pub hist_stash_replay: Arc<SharedHistogram>,
    /// When the current phase began (updated by the transition completer).
    phase_started: Mutex<Instant>,
    /// The phase length currently in effect, in nanoseconds. Starts at
    /// `config.phase_len`; the adaptive tuner may steer it between its
    /// configured bounds. The coordinator reads it every cycle.
    phase_len_ns: AtomicU64,
    /// The live value of `split_min_conflicts` the coordinator gates split
    /// phases on (the classifier keeps its own copy; both are updated
    /// together through [`crate::DoppelDb`]'s tuning hook).
    pub split_gate_conflicts: AtomicU64,
}

impl DoppelShared {
    /// Creates shared state for a database with `config`.
    pub fn new(config: DoppelConfig) -> Self {
        let workers = config.workers;
        let telemetry = Arc::new(Registry::new());
        let hist_phase_joined = telemetry.histogram("phase_joined");
        let hist_phase_split = telemetry.histogram("phase_split");
        let hist_reconcile = telemetry.histogram("reconcile");
        let hist_stash_replay = telemetry.histogram("stash_replay");
        DoppelShared {
            store: Store::new(config.store_shards),
            stats: EngineStats::new(),
            phase: PhaseState::new(workers),
            registry: SplitRegistry::new(),
            classifier: Mutex::new(Classifier::new(config.clone())),
            samplers: (0..workers).map(|_| Mutex::new(WorkerSample::new())).collect(),
            completion_lock: Mutex::new(()),
            splittable_conflicts: AtomicU64::new(0),
            phase_committed: AtomicU64::new(0),
            phase_stashed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            wal: RwLock::new(None),
            telemetry,
            hist_phase_joined,
            hist_phase_split,
            hist_reconcile,
            hist_stash_replay,
            phase_started: Mutex::new(Instant::now()),
            phase_len_ns: AtomicU64::new(config.phase_len.as_nanos().min(u64::MAX as u128) as u64),
            split_gate_conflicts: AtomicU64::new(config.split_min_conflicts),
            config,
        }
    }

    /// The phase length currently in effect (the configured value until the
    /// tuner adjusts it).
    pub fn phase_len(&self) -> Duration {
        Duration::from_nanos(self.phase_len_ns.load(Ordering::Relaxed))
    }

    /// Sets the phase length for subsequent phases. Zero is ignored (a
    /// zero-length phase would spin the coordinator).
    pub fn set_phase_len(&self, len: Duration) {
        let ns = len.as_nanos().min(u64::MAX as u128) as u64;
        if ns > 0 {
            self.phase_len_ns.store(ns, Ordering::Relaxed);
        }
    }

    /// The attached durability sink, if any (a cheap read-lock + Arc clone;
    /// workers call this once per transaction / reconciliation).
    pub fn commit_sink(&self) -> Option<Arc<dyn CommitSink>> {
        self.wal.read().clone()
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown: wait loops unblock and workers stop accepting
    /// transactions.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Attempts to complete the pending phase transition: if every registered
    /// worker has acknowledged it, runs the transition work (classification,
    /// split-set installation, statistics) and publishes the release.
    ///
    /// Any thread may call this; the completion runs exactly once per
    /// transition. Returns `true` if this call performed the completion.
    pub fn try_complete_transition(&self) -> bool {
        let target = self.phase.target();
        if target.seq == 0 || self.phase.released_seq() >= target.seq {
            return false;
        }
        if !self.phase.all_acked(target.seq) {
            return false;
        }
        let _guard = self.completion_lock.lock();
        // Re-check under the lock: another thread may have completed it.
        if self.phase.released_seq() >= target.seq {
            return false;
        }

        // Aggregate and reset every worker's sample for the finished phase.
        let mut aggregate = PhaseSample::default();
        for sampler in &self.samplers {
            aggregate.absorb(sampler.lock().take());
        }

        // The phase that just ended: its duration goes to the matching
        // histogram, and (when tracing) onto the timeline as one span.
        let now = Instant::now();
        let started = std::mem::replace(&mut *self.phase_started.lock(), now);
        let phase_len = now.saturating_duration_since(started);

        let mut classifier = self.classifier.lock();
        match target.phase {
            Phase::Split => {
                // A joined phase just ended: decide what to split and install
                // the split set the workers will pick up after the release.
                self.hist_phase_joined.record(0, phase_len);
                trace::span_since(EventKind::PhaseJoined, target.seq, started);
                let outcome = classifier.end_joined_phase(&aggregate);
                self.registry.install(classifier.split_set());
                EngineStats::bump(&self.stats.joined_phases);
                EngineStats::add(&self.stats.total_splits, outcome.newly_split.len() as u64);
                self.stats
                    .split_records
                    .store(outcome.currently_split as u64, Ordering::Relaxed);
            }
            Phase::Joined => {
                // A split phase just ended (workers merged their slices
                // before acknowledging): reconsider the split decisions.
                self.hist_phase_split.record(0, phase_len);
                trace::span_since(EventKind::PhaseSplit, target.seq, started);
                let outcome = classifier.end_split_phase(&aggregate);
                self.registry.install(classifier.split_set());
                EngineStats::bump(&self.stats.split_phases);
                EngineStats::add(&self.stats.total_unsplits, outcome.unsplit.len() as u64);
                self.stats
                    .split_records
                    .store(outcome.currently_split as u64, Ordering::Relaxed);
            }
        }
        drop(classifier);

        // Reset the feedback counters for the phase that is about to start.
        self.splittable_conflicts.store(0, Ordering::Relaxed);
        self.phase_committed.store(0, Ordering::Relaxed);
        self.phase_stashed.store(0, Ordering::Relaxed);

        self.phase.release(target.seq);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{Key, OpKind};

    fn shared(workers: usize) -> DoppelShared {
        DoppelShared::new(DoppelConfig {
            workers,
            split_min_conflicts: 5,
            split_conflict_fraction: 0.0,
            ..DoppelConfig::default()
        })
    }

    #[test]
    fn completion_requires_all_acks() {
        let s = shared(2);
        s.phase.register_worker(0);
        s.phase.register_worker(1);
        let seq = s.phase.request(Phase::Split);
        assert!(!s.try_complete_transition());
        s.phase.ack(0, seq);
        assert!(!s.try_complete_transition());
        s.phase.ack(1, seq);
        assert!(s.try_complete_transition());
        assert!(!s.try_complete_transition(), "completion runs once");
        assert_eq!(s.phase.current_phase(), Phase::Split);
    }

    #[test]
    fn joined_end_runs_classification_and_installs_split_set() {
        let s = shared(1);
        s.phase.register_worker(0);
        // Simulate a contended joined phase.
        {
            let mut sample = s.samplers[0].lock();
            for _ in 0..100 {
                sample.record_conflict(Key::raw(42), OpKind::Add);
            }
            for _ in 0..100 {
                sample.record_commit();
            }
        }
        let seq = s.phase.request(Phase::Split);
        s.phase.ack(0, seq);
        assert!(s.try_complete_transition());
        let set = s.registry.current();
        assert!(set.is_split(&Key::raw(42)));
        assert_eq!(set.selected_op(&Key::raw(42)), Some(OpKind::Add));
        assert_eq!(s.stats.snapshot().joined_phases, 1);
        assert_eq!(s.stats.snapshot().split_records, 1);
        // The sampler was drained.
        assert!(s.samplers[0].lock().conflicts.is_empty());
    }

    #[test]
    fn split_end_unsplits_cold_keys() {
        let s = shared(1);
        s.phase.register_worker(0);
        s.classifier.lock().label_split(Key::raw(7), OpKind::Add);

        // Enter the split phase.
        let seq = s.phase.request(Phase::Split);
        s.phase.ack(0, seq);
        s.try_complete_transition();
        assert!(s.registry.current().is_split(&Key::raw(7)));

        // Split phase sees lots of commits but no writes to key 7.
        {
            let mut sample = s.samplers[0].lock();
            for _ in 0..1_000 {
                sample.record_commit();
            }
        }
        let seq = s.phase.request(Phase::Joined);
        s.phase.ack(0, seq);
        assert!(s.try_complete_transition());
        assert_eq!(s.stats.snapshot().split_phases, 1);
        assert_eq!(s.stats.snapshot().total_unsplits, 1);
        assert!(!s.classifier.lock().is_split(&Key::raw(7)));
    }

    #[test]
    fn shutdown_flag() {
        let s = shared(1);
        assert!(!s.is_shutdown());
        s.request_shutdown();
        assert!(s.is_shutdown());
    }
}
