//! Contention sampling and split classification (§5.5).
//!
//! "During joined execution, Doppel samples transactions' conflicting record
//! accesses, and keeps a count of which records are most conflicted (are
//! causing the most aborts) and by which operations. During the transition to
//! the split phase, a coordinator thread examines these counts and marks the
//! most conflicted records as split data for the next phase. … Doppel also
//! samples which transactions are stashed due to incompatible operations on
//! split data during the split phase, and uses this to consider whether to
//! move a split record back to reconciled or change its assigned operation.
//! Since split records in the split phase will not cause conflicts, Doppel
//! uses write sampling to estimate if a split record might still be
//! contended."
//!
//! Each worker owns a [`WorkerSample`] (shared with the classifier behind an
//! essentially uncontended mutex). At every phase transition the last
//! acknowledging worker drains all samples into the [`Classifier`], which
//! maintains the persistent per-key split decisions.

use crate::split_registry::SplitSet;
use doppel_common::{split_ops, DoppelConfig, Key, OpKind, TuneThresholds};
use std::collections::HashMap;

/// Per-worker contention sample, reset at every phase transition.
#[derive(Clone, Debug, Default)]
pub struct WorkerSample {
    /// Joined phase: number of aborts attributed to `(key, operation kind)`.
    pub conflicts: HashMap<(Key, OpKind), u64>,
    /// Split phase: operations applied to each split key's slice on this
    /// worker (write sampling — split keys no longer conflict, so writes are
    /// the contention signal).
    pub split_writes: HashMap<Key, u64>,
    /// Split phase: stashes attributed to `(key, attempted operation kind)`.
    pub stashes: HashMap<(Key, OpKind), u64>,
    /// Transactions committed by this worker during the phase.
    pub committed: u64,
}

impl WorkerSample {
    /// Creates an empty sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a joined-phase conflict on `key` caused by an `op` access.
    pub fn record_conflict(&mut self, key: Key, op: OpKind) {
        *self.conflicts.entry((key, op)).or_insert(0) += 1;
    }

    /// Records a split-phase slice write to `key`.
    pub fn record_split_write(&mut self, key: Key) {
        *self.split_writes.entry(key).or_insert(0) += 1;
    }

    /// Records a split-phase stash caused by attempting `op` on split `key`.
    pub fn record_stash(&mut self, key: Key, op: OpKind) {
        *self.stashes.entry((key, op)).or_insert(0) += 1;
    }

    /// Records a committed transaction.
    pub fn record_commit(&mut self) {
        self.committed += 1;
    }

    /// Drains the sample, returning its contents and resetting it.
    pub fn take(&mut self) -> WorkerSample {
        std::mem::take(self)
    }
}

/// Aggregate of all workers' samples for one phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseSample {
    /// Sum of per-worker conflict counts.
    pub conflicts: HashMap<(Key, OpKind), u64>,
    /// Sum of per-worker slice write counts.
    pub split_writes: HashMap<Key, u64>,
    /// Sum of per-worker stash counts.
    pub stashes: HashMap<(Key, OpKind), u64>,
    /// Total committed transactions in the phase.
    pub committed: u64,
}

impl PhaseSample {
    /// Merges one worker's sample into the aggregate.
    pub fn absorb(&mut self, sample: WorkerSample) {
        for (k, v) in sample.conflicts {
            *self.conflicts.entry(k).or_insert(0) += v;
        }
        for (k, v) in sample.split_writes {
            *self.split_writes.entry(k).or_insert(0) += v;
        }
        for (k, v) in sample.stashes {
            *self.stashes.entry(k).or_insert(0) += v;
        }
        self.committed += sample.committed;
    }

    /// Total stashes across all keys.
    pub fn total_stashes(&self) -> u64 {
        self.stashes.values().sum()
    }
}

/// Outcome of a classification pass, for statistics and tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassifyOutcome {
    /// Keys newly marked split.
    pub newly_split: Vec<Key>,
    /// Keys moved back to reconciled state.
    pub unsplit: Vec<Key>,
    /// Number of keys currently split after the pass.
    pub currently_split: usize,
}

/// Persistent split decisions plus the logic that updates them at phase
/// transitions.
#[derive(Debug)]
pub struct Classifier {
    config: DoppelConfig,
    /// Current decisions: key → selected operation. Persists across phases
    /// until the key is explicitly un-split.
    current: HashMap<Key, OpKind>,
    /// Decayed per-key conflict memory for *splittable* operations, kept
    /// beyond the per-phase thresholds so the adaptive tuner can resolve a
    /// heat-sketch token (a lossy [`Key::heat_token`] packing) back to the
    /// full key and its dominant splittable operation. Counts halve at every
    /// joined-phase end, so stale entries age out.
    hot_ops: HashMap<Key, (OpKind, u64)>,
    /// Cumulative split-phase writes per currently-split key — the write
    /// sampling signal the tuner uses for demotion (split keys stop
    /// conflicting, so conflict heat alone cannot tell hot from cold).
    /// Entries are dropped when the key is un-split.
    activity: HashMap<Key, u64>,
}

impl Classifier {
    /// Creates a classifier with no split records. Decisions are validated
    /// against the process-wide [`split_ops`] registry — the same registry
    /// the slices and every engine's apply path resolve semantics from, so
    /// classification and execution can never disagree about an operation.
    pub fn new(config: DoppelConfig) -> Self {
        Classifier {
            config,
            current: HashMap::new(),
            hot_ops: HashMap::new(),
            activity: HashMap::new(),
        }
    }

    /// Current number of split records.
    pub fn split_count(&self) -> usize {
        self.current.len()
    }

    /// True if `key` is currently marked split.
    pub fn is_split(&self, key: &Key) -> bool {
        self.current.contains_key(key)
    }

    /// Builds the split set for the next split phase.
    pub fn split_set(&self) -> SplitSet {
        SplitSet::from_decisions(self.current.iter().map(|(k, op)| (*k, *op)))
    }

    /// Processes the sample of a finished *joined* phase: marks the most
    /// conflicted records (for splittable operations) as split.
    ///
    /// A `(key, op)` pair is split when `op` is splittable and the pair
    /// accumulated at least `split_min_conflicts` conflicts **and** at least
    /// `split_conflict_fraction` of the phase's committed transactions.
    pub fn end_joined_phase(&mut self, sample: &PhaseSample) -> ClassifyOutcome {
        let mut outcome = ClassifyOutcome::default();
        // Age the conflict memory, then absorb this phase's splittable
        // conflicts (sub-threshold ones too — the tuner promotes from heat
        // accumulated across phases, which a per-phase threshold misses).
        self.hot_ops.retain(|_, (_, count)| {
            *count /= 2;
            *count > 0
        });
        for ((key, op), count) in &sample.conflicts {
            if !split_ops().is_splittable(*op) {
                continue;
            }
            let entry = self.hot_ops.entry(*key).or_insert((*op, 0));
            if *op == entry.0 {
                entry.1 += count;
            } else if *count > entry.1 {
                *entry = (*op, *count);
            }
        }
        if !self.config.enable_splitting {
            outcome.currently_split = self.current.len();
            return outcome;
        }
        let committed = sample.committed.max(1);
        let fraction_floor =
            (self.config.split_conflict_fraction * committed as f64).ceil() as u64;
        let threshold = self.config.split_min_conflicts.max(fraction_floor);

        // Rank candidate (key, op) pairs by conflict count, most conflicted
        // first, so the max_split_records cap keeps the hottest keys.
        let mut candidates: Vec<(&(Key, OpKind), &u64)> = sample
            .conflicts
            .iter()
            .filter(|((_, op), count)| split_ops().is_splittable(*op) && **count >= threshold)
            .collect();
        candidates.sort_by(|a, b| b.1.cmp(a.1));

        for ((key, op), _count) in candidates {
            if self.current.len() >= self.config.max_split_records {
                break;
            }
            if !self.current.contains_key(key) {
                self.current.insert(*key, *op);
                outcome.newly_split.push(*key);
            }
        }
        outcome.currently_split = self.current.len();
        outcome
    }

    /// Processes the sample of a finished *split* phase: moves records back
    /// to reconciled state when they are no longer worth splitting, and
    /// switches a record's selected operation when stashes show a different
    /// splittable operation dominating.
    pub fn end_split_phase(&mut self, sample: &PhaseSample) -> ClassifyOutcome {
        let mut outcome = ClassifyOutcome::default();
        let committed = sample.committed.max(1);
        let keep_floor = (self.config.unsplit_write_fraction * committed as f64).ceil() as u64;

        // Accumulate the write-sampling signal for the tuner before any
        // unsplit decision drops the key.
        for (key, writes) in &sample.split_writes {
            *self.activity.entry(*key).or_insert(0) += writes;
        }

        let keys: Vec<Key> = self.current.keys().copied().collect();
        for key in keys {
            let writes = sample.split_writes.get(&key).copied().unwrap_or(0);
            let stashes: u64 = sample
                .stashes
                .iter()
                .filter(|((k, _), _)| *k == key)
                .map(|(_, v)| *v)
                .sum();

            // Rule 1: not enough split-phase writes — splitting no longer
            // pays for its reconciliation cost.
            let too_cold = writes < keep_floor;
            // Rule 2: stashes dominate writes — reads (or incompatible
            // operations) outnumber the split operation so heavily that
            // forcing them to wait for joined phases hurts more than the
            // parallel writes help.
            let too_many_stashes =
                stashes as f64 > self.config.unsplit_stash_ratio * (writes.max(1)) as f64;

            if too_cold || too_many_stashes {
                self.current.remove(&key);
                self.activity.remove(&key);
                outcome.unsplit.push(key);
                continue;
            }

            // Rule 3: a different *splittable* operation dominates the
            // stashes for this key — switch the selected operation for the
            // next phase ("the operation for key k might be Min in one split
            // phase, and Max in the next", §4).
            if let Some((&(_, dominant_op), &dominant_count)) = sample
                .stashes
                .iter()
                .filter(|((k, op), _)| *k == key && split_ops().is_splittable(*op))
                .max_by_key(|(_, v)| **v)
            {
                if dominant_count > writes {
                    self.current.insert(key, dominant_op);
                }
            }
        }
        outcome.currently_split = self.current.len();
        outcome
    }

    /// Forces a manual split decision ("Doppel also supports manual data
    /// labeling", §5.5).
    pub fn label_split(&mut self, key: Key, op: OpKind) {
        assert!(
            split_ops().is_splittable(op),
            "cannot label {key} split for unsplittable {op}"
        );
        self.current.insert(key, op);
    }

    /// Removes a manual or automatic split decision.
    pub fn label_reconciled(&mut self, key: &Key) {
        self.current.remove(key);
        self.activity.remove(key);
    }

    // ---- Adaptive-tuner hooks -------------------------------------------

    /// Resolves a heat-sketch token back to the full key and its dominant
    /// splittable operation, from the decayed conflict memory. Returns
    /// `None` when no remembered key packs to `token` (e.g. the conflicts
    /// aged out, or the token came from an unsplittable-only key).
    pub fn resolve_token(&self, token: u64) -> Option<(Key, OpKind)> {
        self.hot_ops
            .iter()
            .filter(|(key, _)| key.heat_token() == token)
            .max_by_key(|(_, (_, count))| *count)
            .map(|(key, (op, _))| (*key, *op))
    }

    /// Cumulative split-phase writes for every currently-split key (0 for a
    /// key split so recently that no split phase has sampled it yet).
    pub fn split_activity(&self) -> Vec<(Key, u64)> {
        self.current
            .keys()
            .map(|k| (*k, self.activity.get(k).copied().unwrap_or(0)))
            .collect()
    }

    /// The thresholds currently in effect.
    pub fn thresholds(&self) -> TuneThresholds {
        TuneThresholds {
            split_min_conflicts: self.config.split_min_conflicts,
            unsplit_stash_ratio: self.config.unsplit_stash_ratio,
        }
    }

    /// Installs tuned thresholds (the classifier owns a private config
    /// clone, so this does not affect other engine components).
    pub fn set_thresholds(&mut self, t: TuneThresholds) {
        self.config.split_min_conflicts = t.split_min_conflicts;
        self.config.unsplit_stash_ratio = t.unsplit_stash_ratio;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DoppelConfig {
        DoppelConfig {
            split_min_conflicts: 10,
            split_conflict_fraction: 0.01,
            unsplit_write_fraction: 0.01,
            unsplit_stash_ratio: 4.0,
            ..DoppelConfig::default()
        }
    }

    fn joined_sample(conflicts: &[(u64, OpKind, u64)], committed: u64) -> PhaseSample {
        let mut s = PhaseSample { committed, ..Default::default() };
        for (key, op, count) in conflicts {
            s.conflicts.insert((Key::raw(*key), *op), *count);
        }
        s
    }

    #[test]
    fn hot_splittable_key_gets_split() {
        let mut c = Classifier::new(config());
        let sample = joined_sample(&[(1, OpKind::Add, 500), (2, OpKind::Add, 2)], 10_000);
        let outcome = c.end_joined_phase(&sample);
        assert_eq!(outcome.newly_split, vec![Key::raw(1)]);
        assert!(c.is_split(&Key::raw(1)));
        assert!(!c.is_split(&Key::raw(2)), "2 conflicts is below both thresholds");
        assert_eq!(c.split_set().selected_op(&Key::raw(1)), Some(OpKind::Add));
    }

    #[test]
    fn unsplittable_conflicts_are_ignored() {
        let mut c = Classifier::new(config());
        let sample = joined_sample(&[(1, OpKind::Put, 5_000), (1, OpKind::Get, 5_000)], 10_000);
        let outcome = c.end_joined_phase(&sample);
        assert!(outcome.newly_split.is_empty());
        assert_eq!(c.split_count(), 0);
    }

    #[test]
    fn fraction_threshold_scales_with_commit_volume() {
        let mut c = Classifier::new(config());
        // 100 conflicts out of 100k commits = 0.1% < 1% → not split.
        let sample = joined_sample(&[(1, OpKind::Add, 100)], 100_000);
        c.end_joined_phase(&sample);
        assert_eq!(c.split_count(), 0);
        // 2000 conflicts out of 100k commits = 2% ≥ 1% → split.
        let sample = joined_sample(&[(1, OpKind::Add, 2_000)], 100_000);
        c.end_joined_phase(&sample);
        assert_eq!(c.split_count(), 1);
    }

    #[test]
    fn splitting_disabled_never_splits() {
        let mut cfg = config();
        cfg.enable_splitting = false;
        let mut c = Classifier::new(cfg);
        let sample = joined_sample(&[(1, OpKind::Add, 10_000)], 10_000);
        let outcome = c.end_joined_phase(&sample);
        assert!(outcome.newly_split.is_empty());
        assert_eq!(c.split_count(), 0);
    }

    #[test]
    fn max_split_records_cap_keeps_hottest() {
        let mut cfg = config();
        cfg.max_split_records = 2;
        let mut c = Classifier::new(cfg);
        let sample = joined_sample(
            &[(1, OpKind::Add, 100), (2, OpKind::Add, 300), (3, OpKind::Add, 200)],
            1_000,
        );
        c.end_joined_phase(&sample);
        assert_eq!(c.split_count(), 2);
        assert!(c.is_split(&Key::raw(2)));
        assert!(c.is_split(&Key::raw(3)));
        assert!(!c.is_split(&Key::raw(1)));
    }

    #[test]
    fn cold_split_key_is_unsplit() {
        let mut c = Classifier::new(config());
        c.label_split(Key::raw(1), OpKind::Add);
        // Split phase with plenty of commits but almost no writes to key 1.
        let sample = PhaseSample {
            committed: 10_000,
            split_writes: [(Key::raw(1), 3)].into_iter().collect(),
            ..Default::default()
        };
        let outcome = c.end_split_phase(&sample);
        assert_eq!(outcome.unsplit, vec![Key::raw(1)]);
        assert_eq!(c.split_count(), 0);
    }

    #[test]
    fn hot_split_key_stays_split() {
        let mut c = Classifier::new(config());
        c.label_split(Key::raw(1), OpKind::Add);
        let sample = PhaseSample {
            committed: 10_000,
            split_writes: [(Key::raw(1), 4_000)].into_iter().collect(),
            ..Default::default()
        };
        let outcome = c.end_split_phase(&sample);
        assert!(outcome.unsplit.is_empty());
        assert!(c.is_split(&Key::raw(1)));
    }

    #[test]
    fn read_dominated_key_is_unsplit() {
        let mut c = Classifier::new(config());
        c.label_split(Key::raw(1), OpKind::Add);
        let sample = PhaseSample {
            committed: 10_000,
            split_writes: [(Key::raw(1), 200)].into_iter().collect(),
            stashes: [((Key::raw(1), OpKind::Get), 5_000)].into_iter().collect(),
            ..Default::default()
        };
        let outcome = c.end_split_phase(&sample);
        assert_eq!(outcome.unsplit, vec![Key::raw(1)]);
    }

    #[test]
    fn dominant_splittable_stash_switches_selected_op() {
        let mut c = Classifier::new(config());
        c.label_split(Key::raw(1), OpKind::Max);
        let sample = PhaseSample {
            committed: 10_000,
            split_writes: [(Key::raw(1), 500)].into_iter().collect(),
            // More Add attempts were stashed than Max writes happened, but
            // not so many that the key gets unsplit (ratio 4x).
            stashes: [((Key::raw(1), OpKind::Add), 900)].into_iter().collect(),
            ..Default::default()
        };
        c.end_split_phase(&sample);
        assert_eq!(c.split_set().selected_op(&Key::raw(1)), Some(OpKind::Add));
    }

    #[test]
    fn manual_labels() {
        let mut c = Classifier::new(config());
        c.label_split(Key::raw(9), OpKind::TopKInsert);
        assert!(c.is_split(&Key::raw(9)));
        c.label_reconciled(&Key::raw(9));
        assert!(!c.is_split(&Key::raw(9)));
    }

    #[test]
    #[should_panic(expected = "unsplittable")]
    fn manual_label_rejects_unsplittable() {
        let mut c = Classifier::new(config());
        c.label_split(Key::raw(9), OpKind::Get);
    }

    #[test]
    fn conflict_memory_resolves_tokens_and_decays() {
        let mut c = Classifier::new(config());
        let key = Key::raw(77);
        // 4 conflicts: splittable but below the split threshold of 10.
        let sample = joined_sample(&[(77, OpKind::Add, 4)], 1_000);
        c.end_joined_phase(&sample);
        assert_eq!(c.split_count(), 0, "below threshold, not split");
        // The memory still resolves the heat token for the tuner.
        assert_eq!(c.resolve_token(key.heat_token()), Some((key, OpKind::Add)));
        assert_eq!(c.resolve_token(Key::raw(99).heat_token()), None);
        // Unsplittable conflicts never enter the memory.
        let sample = joined_sample(&[(88, OpKind::Put, 1_000)], 1_000);
        c.end_joined_phase(&sample);
        assert_eq!(c.resolve_token(Key::raw(88).heat_token()), None);
        // Quiet phases halve the count each time; the entry ages out.
        for _ in 0..4 {
            c.end_joined_phase(&joined_sample(&[], 1_000));
        }
        assert_eq!(c.resolve_token(key.heat_token()), None, "memory decayed");
    }

    #[test]
    fn split_activity_accumulates_and_clears_on_unsplit() {
        let mut c = Classifier::new(config());
        c.label_split(Key::raw(1), OpKind::Add);
        assert_eq!(c.split_activity(), vec![(Key::raw(1), 0)]);
        let sample = PhaseSample {
            committed: 1_000,
            split_writes: [(Key::raw(1), 400)].into_iter().collect(),
            ..Default::default()
        };
        c.end_split_phase(&sample);
        c.end_split_phase(&sample);
        assert_eq!(c.split_activity(), vec![(Key::raw(1), 800)]);
        c.label_reconciled(&Key::raw(1));
        assert!(c.split_activity().is_empty());
        // Re-splitting starts the cumulative count over.
        c.label_split(Key::raw(1), OpKind::Add);
        assert_eq!(c.split_activity(), vec![(Key::raw(1), 0)]);
    }

    #[test]
    fn tuned_thresholds_take_effect() {
        let mut c = Classifier::new(config());
        assert_eq!(c.thresholds().split_min_conflicts, 10);
        // 5 conflicts: below the default threshold.
        c.end_joined_phase(&joined_sample(&[(1, OpKind::Add, 5)], 100));
        assert_eq!(c.split_count(), 0);
        c.set_thresholds(TuneThresholds { split_min_conflicts: 3, unsplit_stash_ratio: 2.0 });
        assert_eq!(c.thresholds().split_min_conflicts, 3);
        assert_eq!(c.thresholds().unsplit_stash_ratio, 2.0);
        c.end_joined_phase(&joined_sample(&[(1, OpKind::Add, 5)], 100));
        assert_eq!(c.split_count(), 1, "lowered threshold admits the key");
    }

    #[test]
    fn phase_sample_absorbs_worker_samples() {
        let mut w1 = WorkerSample::new();
        w1.record_conflict(Key::raw(1), OpKind::Add);
        w1.record_conflict(Key::raw(1), OpKind::Add);
        w1.record_commit();
        let mut w2 = WorkerSample::new();
        w2.record_conflict(Key::raw(1), OpKind::Add);
        w2.record_split_write(Key::raw(2));
        w2.record_stash(Key::raw(2), OpKind::Get);
        w2.record_commit();
        w2.record_commit();

        let mut agg = PhaseSample::default();
        agg.absorb(w1.take());
        agg.absorb(w2.take());
        assert_eq!(agg.conflicts[&(Key::raw(1), OpKind::Add)], 3);
        assert_eq!(agg.split_writes[&Key::raw(2)], 1);
        assert_eq!(agg.total_stashes(), 1);
        assert_eq!(agg.committed, 3);
        // take() reset the worker samples.
        assert_eq!(w1.committed, 0);
        assert!(w2.conflicts.is_empty());
    }
}
