//! The Doppel database facade.

use crate::coordinator;
use crate::phase::Phase;
use crate::shared::DoppelShared;
use crate::worker::DoppelWorker;
use doppel_common::{
    CommitSink, CoreId, DoppelConfig, Engine, EngineStats, Key, OpKind, StatsSnapshot,
    TuneObservation, TuneSink, TuneThresholds, TxHandle, Value,
};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;

/// An in-memory transactional database using phase reconciliation.
///
/// # Phase control
///
/// A `DoppelDb` can run its phase coordinator in two ways:
///
/// * **automatic** — [`DoppelDb::start`] (or [`DoppelDb::spawn_coordinator`])
///   runs the paper's coordinator thread, switching phases every
///   [`DoppelConfig::phase_len`] subject to the feedback rules of §5.4;
/// * **manual** — tests and examples can call [`DoppelDb::request_phase`] and
///   drive workers themselves; the transition is released as soon as every
///   worker has passed a safepoint ([`TxHandle::execute`] or
///   [`TxHandle::safepoint`]).
///
/// # Examples
///
/// ```
/// use doppel_common::{DoppelConfig, Engine, Key, ProcedureFn, Value};
/// use doppel_db::DoppelDb;
/// use std::sync::Arc;
///
/// let db = DoppelDb::new(DoppelConfig::with_workers(1));
/// db.load(Key::raw(1), Value::Int(0));
/// let mut worker = db.handle(0);
/// let incr = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)));
/// for _ in 0..10 {
///     assert!(worker.execute(incr.clone()).is_committed());
/// }
/// assert_eq!(db.global_get(Key::raw(1)), Some(Value::Int(10)));
/// ```
pub struct DoppelDb {
    shared: Arc<DoppelShared>,
    coordinator: Mutex<Option<JoinHandle<()>>>,
}

impl DoppelDb {
    /// Creates a database with manual phase control (no coordinator thread).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DoppelConfig::validate`].
    pub fn new(config: DoppelConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid DoppelConfig: {msg}");
        }
        DoppelDb { shared: Arc::new(DoppelShared::new(config)), coordinator: Mutex::new(None) }
    }

    /// Creates a database and immediately starts the background coordinator.
    pub fn start(config: DoppelConfig) -> Self {
        let db = DoppelDb::new(config);
        db.spawn_coordinator();
        db
    }

    /// Spawns the coordinator thread if it is not already running.
    pub fn spawn_coordinator(&self) {
        let mut guard = self.coordinator.lock();
        if guard.is_some() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        *guard = Some(
            std::thread::Builder::new()
                .name("doppel-coordinator".into())
                .spawn(move || coordinator::run(shared))
                .expect("failed to spawn coordinator thread"),
        );
    }

    /// Requests a manual phase transition and returns its sequence number.
    /// The transition is released once every worker has acknowledged it at a
    /// safepoint.
    ///
    /// Note that a worker blocks inside [`TxHandle::safepoint`] /
    /// [`TxHandle::execute`] after acknowledging until *all* workers have
    /// acknowledged (that is the paper's barrier, §5.4). With a single worker
    /// the release happens inside the same call, so tests can drive phases
    /// from one thread; with several workers each handle must be driven from
    /// its own thread.
    ///
    /// # Panics
    ///
    /// Panics if a transition is already pending or if the requested phase is
    /// the current phase.
    pub fn request_phase(&self, phase: Phase) -> u64 {
        assert!(
            !self.shared.phase.transition_pending(),
            "a phase transition is already pending"
        );
        assert_ne!(
            self.shared.phase.current_phase(),
            phase,
            "database is already in {phase:?}"
        );
        self.shared.phase.request(phase)
    }

    /// The phase the database is currently in (of the last released
    /// transition).
    pub fn current_phase(&self) -> Phase {
        self.shared.phase.current_phase()
    }

    /// True while a requested transition has not yet been released.
    pub fn transition_pending(&self) -> bool {
        self.shared.phase.transition_pending()
    }

    /// Manually labels `key` as split for `op` ("Doppel also supports manual
    /// data labeling", §5.5). Takes effect at the next joined→split
    /// transition.
    pub fn label_split(&self, key: Key, op: OpKind) {
        self.shared.classifier.lock().label_split(key, op);
    }

    /// Removes a split label so the key returns to reconciled state at the
    /// next transition.
    pub fn label_reconciled(&self, key: Key) {
        self.shared.classifier.lock().label_reconciled(&key);
    }

    /// Number of records currently marked split by the classifier.
    pub fn split_count(&self) -> usize {
        self.shared.classifier.lock().split_count()
    }

    /// The keys currently marked split, with their selected operations.
    pub fn split_keys(&self) -> Vec<(Key, OpKind)> {
        self.shared
            .classifier
            .lock()
            .split_set()
            .iter()
            .map(|(k, op)| (*k, *op))
            .collect()
    }

    /// The engine configuration.
    pub fn config(&self) -> &DoppelConfig {
        &self.shared.config
    }

    /// Shared internal state. Exposed for the benchmark harness and tests
    /// that need to inject contention samples or inspect feedback counters;
    /// not part of the stable API.
    #[doc(hidden)]
    pub fn shared(&self) -> &Arc<DoppelShared> {
        &self.shared
    }
}

/// The adaptive tuner's view of a Doppel database: sampling and the apply
/// path for its decisions. Split-label changes go through the classifier
/// (same path as manual labels, §5.5) and take effect at the next
/// transition; phase length and thresholds take effect immediately.
impl TuneSink for DoppelDb {
    fn observe(&self) -> TuneObservation {
        let classifier = self.shared.classifier.lock();
        TuneObservation {
            stats: self.shared.stats.snapshot(),
            split_keys: classifier.split_set().iter().map(|(k, op)| (*k, *op)).collect(),
            split_activity: classifier.split_activity(),
            phase_len: self.shared.phase_len(),
            thresholds: classifier.thresholds(),
        }
    }

    fn promote(&self, token: u64) -> Option<(Key, OpKind)> {
        let mut classifier = self.shared.classifier.lock();
        if classifier.split_count() >= self.shared.config.max_split_records {
            return None;
        }
        let (key, op) = classifier.resolve_token(token)?;
        if classifier.is_split(&key) {
            return None;
        }
        classifier.label_split(key, op);
        Some((key, op))
    }

    fn demote(&self, key: Key) -> bool {
        let mut classifier = self.shared.classifier.lock();
        if !classifier.is_split(&key) {
            return false;
        }
        classifier.label_reconciled(&key);
        true
    }

    fn set_phase_len(&self, len: std::time::Duration) {
        self.shared.set_phase_len(len);
    }

    fn set_thresholds(&self, thresholds: TuneThresholds) {
        self.shared.classifier.lock().set_thresholds(thresholds);
        self.shared
            .split_gate_conflicts
            .store(thresholds.split_min_conflicts, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Engine for DoppelDb {
    fn name(&self) -> &'static str {
        "Doppel"
    }

    fn workers(&self) -> usize {
        self.shared.config.workers
    }

    fn handle(&self, core: CoreId) -> Box<dyn TxHandle> {
        assert!(
            core < self.shared.config.workers,
            "core {core} out of range (workers = {})",
            self.shared.config.workers
        );
        Box::new(DoppelWorker::new(Arc::clone(&self.shared), core))
    }

    fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    fn global_get(&self, k: Key) -> Option<Value> {
        self.shared.store.read_unlocked(&k)
    }

    fn load(&self, k: Key, v: Value) {
        self.shared.store.load(k, v);
    }

    fn begin_drain(&self) {
        // With the coordinator running, phase transitions keep coming and a
        // drain makes progress on its own. Under manual phase control a drain
        // that starts mid-split-phase would wait forever for the joined phase
        // that replays stashes — request that transition here. (The service
        // owns every handle during a drain, so no other thread is requesting
        // phases concurrently.)
        if self.coordinator.lock().is_some() {
            return;
        }
        if self.shared.phase.current_phase() == Phase::Split
            && !self.shared.phase.transition_pending()
        {
            self.shared.phase.request(Phase::Joined);
        }
    }

    fn shutdown(&self) {
        self.shared.request_shutdown();
        if let Some(handle) = self.coordinator.lock().take() {
            let _ = handle.join();
        }
        // Make everything logged so far durable. Note that split-phase
        // acknowledgements whose merged deltas have not been reconciled yet
        // are *not* on disk; workers reconcile in their `Drop`, so dropping
        // the handles before the database makes the final state durable.
        if let Some(sink) = self.shared.commit_sink() {
            self.shared.stats.absorb_log(&sink.sync());
        }
    }

    fn attach_commit_sink(&self, sink: std::sync::Arc<dyn CommitSink>) {
        *self.shared.wal.write() = Some(sink);
    }

    fn for_each_record(&self, f: &mut dyn FnMut(Key, &Value)) {
        self.shared.store.for_each(|k, r| {
            if let Some(v) = r.read_unlocked() {
                f(*k, &v);
            }
        });
    }

    fn note_recovered(&self, records: u64) {
        EngineStats::add(&self.shared.stats.recovered_txns, records);
    }

    fn telemetry(&self) -> Option<Arc<doppel_telemetry::Registry>> {
        Some(Arc::clone(&self.shared.telemetry))
    }
}

impl Drop for DoppelDb {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{Outcome, ProcedureFn, TxError};
    use std::sync::Arc;
    use std::time::Duration;

    #[allow(clippy::type_complexity)] // spelled out once; the tests only name the Arc
    fn incr(key: u64, n: i64) -> Arc<ProcedureFn<impl Fn(&mut dyn doppel_common::Tx) -> Result<(), TxError> + Send + Sync>> {
        Arc::new(ProcedureFn::new("incr", move |tx| tx.add(Key::raw(key), n)))
    }

    fn read(key: u64) -> Arc<dyn doppel_common::Procedure> {
        Arc::new(ProcedureFn::read_only("read", move |tx| tx.get(Key::raw(key)).map(|_| ())))
    }

    fn manual_config() -> DoppelConfig {
        DoppelConfig {
            workers: 1,
            split_min_conflicts: 1,
            split_conflict_fraction: 0.0,
            unsplit_write_fraction: 0.0,
            ..DoppelConfig::default()
        }
    }

    #[test]
    fn joined_phase_executes_like_occ() {
        let db = DoppelDb::new(manual_config());
        db.load(Key::raw(1), Value::Int(0));
        let mut w = db.handle(0);
        for _ in 0..20 {
            assert!(w.execute(incr(1, 1)).is_committed());
        }
        assert_eq!(db.global_get(Key::raw(1)), Some(Value::Int(20)));
        assert_eq!(db.stats().commits, 20);
        assert_eq!(db.current_phase(), Phase::Joined);
        assert_eq!(db.name(), "Doppel");
    }

    #[test]
    fn manual_split_phase_cycle_preserves_counter() {
        let db = DoppelDb::new(manual_config());
        db.load(Key::raw(5), Value::Int(100));
        db.label_split(Key::raw(5), OpKind::Add);
        let mut w = db.handle(0);

        // Move to the split phase (released at the worker's next safepoint).
        db.request_phase(Phase::Split);
        w.safepoint();
        assert_eq!(db.current_phase(), Phase::Split);

        // Split-phase increments go to the per-core slice, not the store.
        for _ in 0..50 {
            assert!(w.execute(incr(5, 2)).is_committed());
        }
        assert_eq!(db.global_get(Key::raw(5)), Some(Value::Int(100)), "global value untouched");
        assert_eq!(db.stats().slice_ops, 50);

        // Back to joined: the worker reconciles before acknowledging.
        db.request_phase(Phase::Joined);
        w.safepoint();
        assert_eq!(db.current_phase(), Phase::Joined);
        assert_eq!(db.global_get(Key::raw(5)), Some(Value::Int(200)));
        assert_eq!(db.stats().slices_merged, 1);
        assert_eq!(db.stats().split_phases, 1);
    }

    #[test]
    fn split_phase_stashes_reads_and_replays_them() {
        let db = DoppelDb::new(manual_config());
        db.load(Key::raw(5), Value::Int(7));
        db.label_split(Key::raw(5), OpKind::Add);
        let mut w = db.handle(0);

        db.request_phase(Phase::Split);
        w.safepoint();

        // A read of split data is stashed.
        let out = w.execute(read(5));
        let ticket = match out {
            Outcome::Stashed(t) => t,
            other => panic!("expected stash, got {other:?}"),
        };
        assert_eq!(w.stash_len(), 1);
        assert_eq!(db.stats().stashes, 1);

        // Writes with the selected op still commit.
        assert!(w.execute(incr(5, 3)).is_committed());

        // Returning to the joined phase replays the stashed read.
        db.request_phase(Phase::Joined);
        w.safepoint();
        let completions = w.take_completions();
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].ticket, ticket);
        assert!(completions[0].result.is_ok());
        assert_eq!(w.stash_len(), 0);
        assert_eq!(db.stats().stash_commits, 1);
        // The replay ran after reconciliation, so it saw the merged value.
        assert_eq!(db.global_get(Key::raw(5)), Some(Value::Int(10)));
    }

    #[test]
    fn automatic_classification_splits_contended_key() {
        // Single worker: conflicts cannot actually happen, so inject the
        // contention signal through the classifier the same way multiple
        // workers would, then check the phase machinery picks it up.
        let db = DoppelDb::new(manual_config());
        db.load(Key::raw(9), Value::Int(0));
        let mut w = db.handle(0);
        // Simulate sampled conflicts as a contended multi-core run would.
        {
            let shared = db.shared();
            let mut sample = shared.samplers[0].lock();
            for _ in 0..100 {
                sample.record_conflict(Key::raw(9), OpKind::Add);
            }
        }
        db.request_phase(Phase::Split);
        w.safepoint();
        assert_eq!(db.current_phase(), Phase::Split);
        assert_eq!(db.split_count(), 1);
        assert_eq!(db.split_keys(), vec![(Key::raw(9), OpKind::Add)]);
        // Increments now go to slices.
        assert!(w.execute(incr(9, 1)).is_committed());
        assert_eq!(db.stats().slice_ops, 1);
        db.request_phase(Phase::Joined);
        w.safepoint();
        assert_eq!(db.global_get(Key::raw(9)), Some(Value::Int(1)));
    }

    #[test]
    fn unsplit_when_cold() {
        let mut cfg = manual_config();
        cfg.unsplit_write_fraction = 0.5; // aggressive: unsplit unless ≥50% of txns write it
        let db = DoppelDb::new(cfg);
        db.load(Key::raw(3), Value::Int(0));
        db.load(Key::raw(4), Value::Int(0));
        db.label_split(Key::raw(3), OpKind::Add);
        let mut w = db.handle(0);

        db.request_phase(Phase::Split);
        w.safepoint();
        // Lots of commits, but none touch the split key.
        for _ in 0..100 {
            assert!(w.execute(incr(4, 1)).is_committed());
        }
        db.request_phase(Phase::Joined);
        w.safepoint();
        assert_eq!(db.split_count(), 0, "cold key moved back to reconciled");
        assert_eq!(db.stats().total_unsplits, 1);
    }

    #[test]
    fn ablation_without_splitting_still_correct() {
        let mut cfg = manual_config();
        cfg.enable_splitting = false;
        let db = DoppelDb::new(cfg);
        db.load(Key::raw(1), Value::Int(0));
        let mut w = db.handle(0);
        for _ in 0..10 {
            assert!(w.execute(incr(1, 1)).is_committed());
        }
        // Even with a manual label, end_joined_phase refuses to split.
        db.label_split(Key::raw(1), OpKind::Add);
        db.request_phase(Phase::Split);
        w.safepoint();
        // The label was installed manually so the registry still carries it;
        // what matters is correctness of the data.
        for _ in 0..10 {
            assert!(w.execute(incr(1, 1)).is_committed());
        }
        db.request_phase(Phase::Joined);
        w.safepoint();
        assert_eq!(db.global_get(Key::raw(1)), Some(Value::Int(20)));
    }

    type LoggedCommit = (doppel_common::Tid, Vec<(Key, doppel_common::Op)>);

    /// In-memory [`CommitSink`] recording what the engine would have logged.
    #[derive(Default)]
    struct RecordingSink {
        commits: parking_lot::Mutex<Vec<LoggedCommit>>,
        deltas: parking_lot::Mutex<Vec<(Key, Vec<doppel_common::Op>)>>,
    }

    impl CommitSink for RecordingSink {
        fn log_commit(
            &self,
            tid: doppel_common::Tid,
            writes: &mut dyn ExactSizeIterator<Item = (Key, &doppel_common::Op)>,
        ) -> doppel_common::LogReceipt {
            if writes.len() == 0 {
                return doppel_common::LogReceipt::default();
            }
            self.commits.lock().push((tid, writes.map(|(k, op)| (k, op.clone())).collect()));
            doppel_common::LogReceipt { records: 1, bytes: 1, ..Default::default() }
        }

        fn log_merged_delta(
            &self,
            _tid: doppel_common::Tid,
            key: Key,
            ops: &[doppel_common::Op],
        ) -> doppel_common::LogReceipt {
            self.deltas.lock().push((key, ops.to_vec()));
            doppel_common::LogReceipt { records: 1, bytes: 1, ..Default::default() }
        }

        fn sync(&self) -> doppel_common::LogReceipt {
            doppel_common::LogReceipt::default()
        }
    }

    #[test]
    fn split_phase_logs_one_merged_delta_per_key_not_per_op() {
        let db = DoppelDb::new(manual_config());
        let sink = Arc::new(RecordingSink::default());
        db.attach_commit_sink(sink.clone());
        db.load(Key::raw(5), Value::Int(0));
        db.load(Key::raw(6), Value::Int(0));
        db.label_split(Key::raw(5), OpKind::Add);
        db.label_split(Key::raw(6), OpKind::Add);
        let mut w = db.handle(0);

        db.request_phase(Phase::Split);
        w.safepoint();
        // 100 split-phase increments across the two split keys: none are
        // logged individually.
        for i in 0..100u64 {
            assert!(w.execute(incr(5 + (i % 2), 1)).is_committed());
        }
        assert_eq!(sink.commits.lock().len(), 0, "slice ops must not log per-operation");
        assert_eq!(db.stats().slice_ops, 100);

        // Reconciliation emits exactly one merged-delta record per split key.
        db.request_phase(Phase::Joined);
        w.safepoint();
        let deltas = sink.deltas.lock();
        assert_eq!(deltas.len(), 2, "one record per split key per reconciliation");
        for (key, ops) in deltas.iter() {
            assert_eq!(ops, &vec![doppel_common::Op::Add(50)], "merged delta for {key}");
        }
        drop(deltas);
        assert_eq!(db.stats().log_records, 2);

        // Joined-phase commits log conventionally.
        assert!(w.execute(incr(5, 1)).is_committed());
        assert_eq!(sink.commits.lock().len(), 1);
        assert_eq!(db.global_get(Key::raw(5)), Some(Value::Int(51)));
    }

    #[test]
    fn tune_sink_hooks_drive_the_engine() {
        let db = DoppelDb::new(manual_config());
        let sink: &dyn TuneSink = &db;

        // Phase length: applied immediately, zero ignored.
        sink.set_phase_len(Duration::from_millis(7));
        assert_eq!(sink.observe().phase_len, Duration::from_millis(7));
        sink.set_phase_len(Duration::ZERO);
        assert_eq!(sink.observe().phase_len, Duration::from_millis(7));

        // Thresholds: classifier and coordinator gate move together.
        sink.set_thresholds(TuneThresholds { split_min_conflicts: 3, unsplit_stash_ratio: 2.0 });
        let obs = sink.observe();
        assert_eq!(obs.thresholds.split_min_conflicts, 3);
        assert_eq!(
            db.shared().split_gate_conflicts.load(std::sync::atomic::Ordering::Relaxed),
            3
        );

        // Promotion resolves a heat token through the conflict memory.
        let key = Key::raw(42);
        {
            let shared = db.shared();
            let mut sample = shared.samplers[0].lock();
            sample.record_conflict(key, OpKind::Add);
        }
        let mut w = db.handle(0);
        db.request_phase(Phase::Split);
        w.safepoint();
        db.request_phase(Phase::Joined);
        w.safepoint();
        // One conflict was below even the tuned threshold, so the classifier
        // did not split it — but the memory resolves it for the tuner.
        assert_eq!(sink.promote(key.heat_token()), Some((key, OpKind::Add)));
        assert!(sink.promote(key.heat_token()).is_none(), "already split");
        assert_eq!(sink.observe().split_keys, vec![(key, OpKind::Add)]);
        assert_eq!(sink.observe().split_activity, vec![(key, 0)]);

        // Unknown tokens cannot be promoted; demotion round-trips.
        assert!(sink.promote(Key::raw(9_999).heat_token()).is_none());
        assert!(sink.demote(key));
        assert!(!sink.demote(key), "already reconciled");
        assert!(sink.observe().split_keys.is_empty());
    }

    #[test]
    fn automatic_coordinator_cycles_phases() {
        let cfg = DoppelConfig {
            workers: 2,
            phase_len: Duration::from_millis(5),
            split_min_conflicts: 1,
            split_conflict_fraction: 0.0,
            unsplit_write_fraction: 0.0,
            ..DoppelConfig::default()
        };
        let db = Arc::new(DoppelDb::start(cfg));
        db.load(Key::raw(0), Value::Int(0));
        // Label the counter split up front so the coordinator has a reason to
        // cycle phases even if the two time-sliced workers happen not to
        // conflict during the short run (conflicts would trigger the same
        // classification automatically, just not deterministically).
        db.label_split(Key::raw(0), OpKind::Add);
        let per_worker: i64 = 20_000;
        let total: i64 = 2 * per_worker;
        let mut joins = Vec::new();
        for core in 0..2usize {
            let db = Arc::clone(&db);
            joins.push(std::thread::spawn(move || {
                let mut w = db.handle(core);
                let proc = incr(0, 1);
                let mut committed = 0;
                while committed < per_worker {
                    match w.execute(proc.clone()) {
                        Outcome::Committed(_) => committed += 1,
                        Outcome::Aborted(TxError::Shutdown) => break,
                        Outcome::Aborted(_) => {}
                        Outcome::Stashed(_) => {
                            unreachable!("increments never stash")
                        }
                    }
                }
                committed
            }));
        }
        let committed: i64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        db.shutdown();
        assert_eq!(committed, total);
        // Every committed increment is reflected exactly once after shutdown
        // (slices were reconciled when leaving the last split phase; if the
        // run ended mid-split-phase the workers reconciled at the final
        // transition driven by shutdown... drive one more safepoint to be
        // sure).
        let stats = db.stats();
        assert!(stats.joined_phases > 0, "coordinator should have cycled phases");
        assert!(stats.slice_ops > 0, "split-phase increments should have used slices");
        assert_eq!(db.global_get(Key::raw(0)), Some(Value::Int(committed)));
    }
}
