//! Per-core slices for split records (§4).
//!
//! During a split phase, all operations on a split record are applied to the
//! executing core's *slice* of that record instead of the global store. The
//! design requirements from §4 are encoded here:
//!
//! * slices are quick to initialize (no read of the global value is needed:
//!   every slice starts as the *identity* of its operation and the merge
//!   combines it with the global value, which is equivalent to initializing
//!   the slice from the global value and overwriting at merge);
//! * operations on slices are fast (a single in-place update);
//! * the size of a slice is independent of the number of operations applied
//!   to it (guideline 4), so merging costs O(cores), not O(operations).
//!
//! A [`Slice`] is no longer an enum with one arm per operation: it is a
//! generic accumulator driven by the operation's
//! [`doppel_common::SplitOp`] implementation from the
//! [`doppel_common::split_ops`] registry. The fold logic ("slice-apply" in
//! Figure 3) and the merge logic ("merge-apply" in Figure 4 / the merge
//! functions of Figure 5) both live on the trait, so registering a new
//! splittable operation automatically gives it a working slice.

use doppel_common::{split_ops, Op, OpKind, SplitOp, TxError, Value};

/// A per-core slice of one split record, specialised to the record's selected
/// operation for the current split phase.
#[derive(Clone, Debug)]
pub struct Slice {
    /// The selected operation's semantics, resolved from the registry once at
    /// slice creation.
    op: &'static dyn SplitOp,
    /// The folded accumulator; `None` until the first operation arrives
    /// (the operation's identity).
    state: Option<Value>,
    /// A copy of the first folded operation: carries static parameters the
    /// merge needs (top-K capacity, `BoundedAdd` bound).
    first: Option<Op>,
    /// Number of operations folded into this slice.
    count: u64,
}

impl Slice {
    /// Creates the identity slice for the selected operation kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` has no registered [`SplitOp`] — the classifier never
    /// selects such operations (§4 guideline 1).
    pub fn new(kind: OpKind) -> Slice {
        let op = split_ops()
            .get(kind)
            .unwrap_or_else(|| panic!("operation {kind} is not splittable"));
        Slice { op, state: None, first: None, count: 0 }
    }

    /// The operation kind this slice accepts.
    pub fn kind(&self) -> OpKind {
        self.op.kind()
    }

    /// Number of operations folded into this slice.
    pub fn op_count(&self) -> u64 {
        self.count
    }

    /// The current accumulator state (`None` before the first fold). Exposed
    /// for tests and diagnostics.
    pub fn state(&self) -> Option<&Value> {
        self.state.as_ref()
    }

    /// Applies one operation to the slice ("slice-apply" in Figure 3).
    ///
    /// Returns an error if the operation kind does not match the slice; the
    /// caller (the split-phase commit path) only applies operations that
    /// matched the record's selected kind, so a mismatch indicates a logic
    /// error upstream.
    pub fn apply(&mut self, op: &Op) -> Result<(), TxError> {
        if op.kind() != self.op.kind() {
            return Err(TxError::type_mismatch(op.kind(), self.op.value_kind()));
        }
        debug_assert!(
            self.first.as_ref().is_none_or(|first| self.op.params_match(first, op)),
            "{op} disagrees with this slice's first operation on a static per-record \
             parameter (e.g. BoundedAdd bound, TopKInsert capacity)"
        );
        // `fold` mutates in place and leaves the state untouched on error, so
        // a rejected operation cannot discard previously folded updates.
        self.op.fold(&mut self.state, op)?;
        if self.first.is_none() {
            self.first = Some(op.clone());
        }
        self.count += 1;
        Ok(())
    }

    /// Converts the slice into the operations to apply to the global record
    /// at reconciliation ("merge-apply" in Figure 4 / the merge functions of
    /// Figure 5). Returns an empty vector if the accumulator is still (or has
    /// returned to) the operation's absorbing identity — merging it would be
    /// a no-op.
    pub fn into_merge_ops(self) -> Vec<Op> {
        match (self.state, self.first) {
            (Some(state), Some(first)) => self.op.merge_ops(state, &first),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{IntSet, OrderKey, Value};

    #[test]
    fn identity_slices() {
        for kind in [
            OpKind::Max,
            OpKind::Min,
            OpKind::Add,
            OpKind::Mult,
            OpKind::OPut,
            OpKind::TopKInsert,
            OpKind::BitOr,
            OpKind::BoundedAdd,
            OpKind::SetUnion,
        ] {
            let s = Slice::new(kind);
            assert_eq!(s.kind(), kind);
            assert_eq!(s.op_count(), 0);
            assert!(s.state().is_none());
            assert!(s.into_merge_ops().is_empty(), "empty {kind} slice merges to nothing");
        }
    }

    #[test]
    #[should_panic(expected = "not splittable")]
    fn identity_of_put_panics() {
        let _ = Slice::new(OpKind::Put);
    }

    #[test]
    fn max_slice_accumulates() {
        let mut s = Slice::new(OpKind::Max);
        assert!(s.clone().into_merge_ops().is_empty(), "empty slice merges to nothing");
        s.apply(&Op::Max(5)).unwrap();
        s.apply(&Op::Max(3)).unwrap();
        s.apply(&Op::Max(9)).unwrap();
        assert_eq!(s.op_count(), 3);
        assert_eq!(s.into_merge_ops(), vec![Op::Max(9)]);
    }

    #[test]
    fn min_slice_accumulates() {
        let mut s = Slice::new(OpKind::Min);
        s.apply(&Op::Min(5)).unwrap();
        s.apply(&Op::Min(12)).unwrap();
        s.apply(&Op::Min(-2)).unwrap();
        assert_eq!(s.into_merge_ops(), vec![Op::Min(-2)]);
    }

    #[test]
    fn add_slice_sums_deltas() {
        let mut s = Slice::new(OpKind::Add);
        for _ in 0..100 {
            s.apply(&Op::Add(2)).unwrap();
        }
        s.apply(&Op::Add(-50)).unwrap();
        assert_eq!(s.into_merge_ops(), vec![Op::Add(150)]);
        // A zero-sum slice merges to nothing.
        let mut z = Slice::new(OpKind::Add);
        z.apply(&Op::Add(4)).unwrap();
        z.apply(&Op::Add(-4)).unwrap();
        assert!(z.into_merge_ops().is_empty());
    }

    #[test]
    fn mult_slice_multiplies_factors() {
        let mut s = Slice::new(OpKind::Mult);
        s.apply(&Op::Mult(2)).unwrap();
        s.apply(&Op::Mult(3)).unwrap();
        assert_eq!(s.into_merge_ops(), vec![Op::Mult(6)]);
        assert!(Slice::new(OpKind::Mult).into_merge_ops().is_empty());
    }

    #[test]
    fn oput_slice_keeps_winning_tuple() {
        let mut s = Slice::new(OpKind::OPut);
        s.apply(&Op::OPut { order: OrderKey::from(5), core: 1, payload: "a".into() }).unwrap();
        s.apply(&Op::OPut { order: OrderKey::from(3), core: 2, payload: "b".into() }).unwrap();
        s.apply(&Op::OPut { order: OrderKey::from(5), core: 3, payload: "c".into() }).unwrap();
        match s.into_merge_ops().as_slice() {
            [Op::OPut { order, core, payload }] => {
                assert_eq!(*order, OrderKey::from(5));
                assert_eq!(*core, 3);
                assert_eq!(*payload, bytes::Bytes::from("c"));
            }
            other => panic!("unexpected merge ops {other:?}"),
        }
    }

    #[test]
    fn topk_slice_bounds_size() {
        let mut s = Slice::new(OpKind::TopKInsert);
        for i in 0..50 {
            s.apply(&Op::TopKInsert {
                order: OrderKey::from(i),
                core: 0,
                payload: "x".into(),
                k: 3,
            })
            .unwrap();
        }
        // Guideline 4: slice size stays bounded by K regardless of op count.
        let ops = s.into_merge_ops();
        assert_eq!(ops.len(), 3);
        let orders: Vec<i64> = ops
            .iter()
            .map(|op| match op {
                Op::TopKInsert { order, .. } => order.primary(),
                other => panic!("unexpected merge op {other:?}"),
            })
            .collect();
        assert!(orders.contains(&49));
        assert!(orders.contains(&48));
        assert!(orders.contains(&47));
    }

    #[test]
    fn bitor_slice_ors_flags() {
        let mut s = Slice::new(OpKind::BitOr);
        s.apply(&Op::BitOr(0b0001)).unwrap();
        s.apply(&Op::BitOr(0b0100)).unwrap();
        s.apply(&Op::BitOr(0b0001)).unwrap();
        assert_eq!(s.into_merge_ops(), vec![Op::BitOr(0b0101)]);
        // An all-zero slice merges to nothing.
        let mut z = Slice::new(OpKind::BitOr);
        z.apply(&Op::BitOr(0)).unwrap();
        assert!(z.into_merge_ops().is_empty());
    }

    #[test]
    fn bounded_add_slice_defers_clamping_to_merge() {
        let mut s = Slice::new(OpKind::BoundedAdd);
        for _ in 0..5 {
            s.apply(&Op::BoundedAdd { n: 4, bound: 10 }).unwrap();
        }
        // The accumulator is the raw sum (20), above the bound.
        assert_eq!(s.state(), Some(&Value::Int(20)));
        let ops = s.into_merge_ops();
        assert_eq!(ops, vec![Op::BoundedAdd { n: 20, bound: 10 }]);
        // Merging clamps exactly once.
        assert_eq!(ops[0].apply_to(Some(&Value::Int(3))).unwrap(), Value::Int(10));
    }

    #[test]
    fn set_union_slice_accumulates_distinct_elements() {
        let mut s = Slice::new(OpKind::SetUnion);
        for e in [3, 9, 3, 7, 9] {
            s.apply(&Op::SetUnion(IntSet::singleton(e))).unwrap();
        }
        match s.into_merge_ops().as_slice() {
            [Op::SetUnion(set)] => {
                assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 7, 9]);
            }
            other => panic!("unexpected merge ops {other:?}"),
        }
    }

    #[test]
    fn mismatched_op_is_rejected() {
        let mut s = Slice::new(OpKind::Add);
        let err = s.apply(&Op::Max(3)).unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
        assert_eq!(s.op_count(), 0, "a rejected op must not count as folded");
    }

    /// The core commutativity property (§4): applying a set of operations to
    /// per-core slices and merging gives the same result as applying them to
    /// the global value directly, for any assignment of operations to cores.
    #[test]
    fn slice_then_merge_equals_direct_application() {
        let ops: Vec<Op> = vec![Op::Add(5), Op::Add(-2), Op::Add(11), Op::Add(7), Op::Add(-9)];
        let direct = ops
            .iter()
            .fold(Value::Int(100), |acc, op| op.apply_to(Some(&acc)).unwrap());

        // Distribute across 3 "cores" in an arbitrary pattern.
        let mut slices = vec![Slice::new(OpKind::Add); 3];
        for (i, op) in ops.iter().enumerate() {
            slices[i % 3].apply(op).unwrap();
        }
        let mut merged = Value::Int(100);
        for s in slices {
            for op in s.into_merge_ops() {
                merged = op.apply_to(Some(&merged)).unwrap();
            }
        }
        assert_eq!(merged, direct);
    }
}
