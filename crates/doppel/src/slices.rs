//! Per-core slices for split records (§4).
//!
//! During a split phase, all operations on a split record are applied to the
//! executing core's *slice* of that record instead of the global store. The
//! design requirements from §4 are encoded here:
//!
//! * slices are quick to initialize (no read of the global value is needed:
//!   every slice starts as the *identity* of its operation and the merge
//!   combines it with the global value, which is equivalent to initializing
//!   the slice from the global value and overwriting at merge);
//! * operations on slices are fast (a single in-place update);
//! * the size of a slice is independent of the number of operations applied
//!   to it (guideline 4), so merging costs O(cores), not O(operations).

use doppel_common::{Op, OpKind, OrderedTuple, TopKSet, TxError, ValueKind};

/// A per-core slice of one split record, specialised to the record's selected
/// operation for the current split phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Slice {
    /// Running maximum of all `Max` arguments seen this phase.
    Max(Option<i64>),
    /// Running minimum of all `Min` arguments seen this phase.
    Min(Option<i64>),
    /// Sum of all `Add` arguments (the delta to add at merge time).
    Add(i64),
    /// Product of all `Mult` arguments (the factor to apply at merge time).
    Mult(i64),
    /// The winning ordered tuple among all `OPut`s executed on this core.
    OPut(Option<OrderedTuple>),
    /// A local top-K set absorbing all `TopKInsert`s executed on this core.
    TopK(TopKSet),
}

impl Slice {
    /// Creates the identity slice for the selected operation kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not splittable — the classifier never selects such
    /// operations (§4 guideline 1).
    pub fn identity(kind: OpKind, topk_capacity: usize) -> Slice {
        match kind {
            OpKind::Max => Slice::Max(None),
            OpKind::Min => Slice::Min(None),
            OpKind::Add => Slice::Add(0),
            OpKind::Mult => Slice::Mult(1),
            OpKind::OPut => Slice::OPut(None),
            OpKind::TopKInsert => Slice::TopK(TopKSet::new(topk_capacity)),
            other => panic!("operation {other} is not splittable"),
        }
    }

    /// The operation kind this slice accepts.
    pub fn kind(&self) -> OpKind {
        match self {
            Slice::Max(_) => OpKind::Max,
            Slice::Min(_) => OpKind::Min,
            Slice::Add(_) => OpKind::Add,
            Slice::Mult(_) => OpKind::Mult,
            Slice::OPut(_) => OpKind::OPut,
            Slice::TopK(_) => OpKind::TopKInsert,
        }
    }

    /// Applies one operation to the slice ("slice-apply" in Figure 3).
    ///
    /// Returns an error if the operation kind does not match the slice; the
    /// caller (the split-phase commit path) only applies operations that
    /// matched the record's selected kind, so a mismatch indicates a logic
    /// error upstream.
    pub fn apply(&mut self, op: &Op) -> Result<(), TxError> {
        match (self, op) {
            (Slice::Max(cur), Op::Max(n)) => {
                *cur = Some(cur.map_or(*n, |c| c.max(*n)));
                Ok(())
            }
            (Slice::Min(cur), Op::Min(n)) => {
                *cur = Some(cur.map_or(*n, |c| c.min(*n)));
                Ok(())
            }
            (Slice::Add(sum), Op::Add(n)) => {
                *sum = sum.wrapping_add(*n);
                Ok(())
            }
            (Slice::Mult(prod), Op::Mult(n)) => {
                *prod = prod.wrapping_mul(*n);
                Ok(())
            }
            (Slice::OPut(cur), Op::OPut { order, core, payload }) => {
                let candidate = OrderedTuple::new(order.clone(), *core, payload.clone());
                let replace = match cur.as_ref() {
                    None => true,
                    Some(existing) => candidate.supersedes(existing),
                };
                if replace {
                    *cur = Some(candidate);
                }
                Ok(())
            }
            (Slice::TopK(set), Op::TopKInsert { order, core, payload, .. }) => {
                set.insert(order.clone(), *core, payload.clone());
                Ok(())
            }
            (slice, op) => Err(TxError::type_mismatch(op.kind(), slice_value_kind(slice))),
        }
    }

    /// Converts the slice into the operations to apply to the global record
    /// at reconciliation ("merge-apply" in Figure 4 / the merge functions of
    /// Figure 5). Returns an empty vector if no operation was applied to this
    /// slice — merging it would be a no-op.
    ///
    /// Every slice kind except `TopK` merges with a single operation; a
    /// `TopK` slice merges by re-inserting its (at most K) retained tuples,
    /// so the merge cost is still independent of how many operations executed
    /// during the split phase (§4 guideline 4).
    pub fn into_merge_ops(self) -> Vec<Op> {
        match self {
            Slice::Max(Some(n)) => vec![Op::Max(n)],
            Slice::Min(Some(n)) => vec![Op::Min(n)],
            Slice::Add(0) => Vec::new(),
            Slice::Add(n) => vec![Op::Add(n)],
            Slice::Mult(1) => Vec::new(),
            Slice::Mult(n) => vec![Op::Mult(n)],
            Slice::OPut(Some(t)) => {
                vec![Op::OPut { order: t.order, core: t.core, payload: t.payload }]
            }
            Slice::Max(None) | Slice::Min(None) | Slice::OPut(None) => Vec::new(),
            Slice::TopK(set) => {
                let k = set.capacity();
                set.iter()
                    .map(|t| Op::TopKInsert {
                        order: t.order.clone(),
                        core: t.core,
                        payload: t.payload.clone(),
                        k,
                    })
                    .collect()
            }
        }
    }
}

/// The value kind a slice logically operates on, for error reporting.
fn slice_value_kind(slice: &Slice) -> ValueKind {
    match slice {
        Slice::Max(_) | Slice::Min(_) | Slice::Add(_) | Slice::Mult(_) => ValueKind::Int,
        Slice::OPut(_) => ValueKind::Tuple,
        Slice::TopK(_) => ValueKind::TopK,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{OrderKey, Value};

    #[test]
    fn identity_slices() {
        assert_eq!(Slice::identity(OpKind::Max, 8), Slice::Max(None));
        assert_eq!(Slice::identity(OpKind::Min, 8), Slice::Min(None));
        assert_eq!(Slice::identity(OpKind::Add, 8), Slice::Add(0));
        assert_eq!(Slice::identity(OpKind::Mult, 8), Slice::Mult(1));
        assert_eq!(Slice::identity(OpKind::OPut, 8), Slice::OPut(None));
        assert_eq!(Slice::identity(OpKind::TopKInsert, 4).kind(), OpKind::TopKInsert);
    }

    #[test]
    #[should_panic(expected = "not splittable")]
    fn identity_of_put_panics() {
        let _ = Slice::identity(OpKind::Put, 8);
    }

    #[test]
    fn max_slice_accumulates() {
        let mut s = Slice::identity(OpKind::Max, 8);
        assert!(s.clone().into_merge_ops().is_empty(), "empty slice merges to nothing");
        s.apply(&Op::Max(5)).unwrap();
        s.apply(&Op::Max(3)).unwrap();
        s.apply(&Op::Max(9)).unwrap();
        assert_eq!(s.into_merge_ops(), vec![Op::Max(9)]);
    }

    #[test]
    fn min_slice_accumulates() {
        let mut s = Slice::identity(OpKind::Min, 8);
        s.apply(&Op::Min(5)).unwrap();
        s.apply(&Op::Min(12)).unwrap();
        s.apply(&Op::Min(-2)).unwrap();
        assert_eq!(s.into_merge_ops(), vec![Op::Min(-2)]);
    }

    #[test]
    fn add_slice_sums_deltas() {
        let mut s = Slice::identity(OpKind::Add, 8);
        for _ in 0..100 {
            s.apply(&Op::Add(2)).unwrap();
        }
        s.apply(&Op::Add(-50)).unwrap();
        assert_eq!(s.into_merge_ops(), vec![Op::Add(150)]);
        // A zero-sum slice merges to nothing.
        let mut z = Slice::identity(OpKind::Add, 8);
        z.apply(&Op::Add(4)).unwrap();
        z.apply(&Op::Add(-4)).unwrap();
        assert!(z.into_merge_ops().is_empty());
    }

    #[test]
    fn mult_slice_multiplies_factors() {
        let mut s = Slice::identity(OpKind::Mult, 8);
        s.apply(&Op::Mult(2)).unwrap();
        s.apply(&Op::Mult(3)).unwrap();
        assert_eq!(s.into_merge_ops(), vec![Op::Mult(6)]);
        assert!(Slice::identity(OpKind::Mult, 8).into_merge_ops().is_empty());
    }

    #[test]
    fn oput_slice_keeps_winning_tuple() {
        let mut s = Slice::identity(OpKind::OPut, 8);
        s.apply(&Op::OPut { order: OrderKey::from(5), core: 1, payload: "a".into() }).unwrap();
        s.apply(&Op::OPut { order: OrderKey::from(3), core: 2, payload: "b".into() }).unwrap();
        s.apply(&Op::OPut { order: OrderKey::from(5), core: 3, payload: "c".into() }).unwrap();
        match s.into_merge_ops().as_slice() {
            [Op::OPut { order, core, payload }] => {
                assert_eq!(*order, OrderKey::from(5));
                assert_eq!(*core, 3);
                assert_eq!(*payload, bytes::Bytes::from("c"));
            }
            other => panic!("unexpected merge ops {other:?}"),
        }
    }

    #[test]
    fn topk_slice_bounds_size() {
        let mut s = Slice::identity(OpKind::TopKInsert, 3);
        for i in 0..50 {
            s.apply(&Op::TopKInsert {
                order: OrderKey::from(i),
                core: 0,
                payload: "x".into(),
                k: 3,
            })
            .unwrap();
        }
        // Guideline 4: slice size stays bounded by K regardless of op count.
        let ops = s.into_merge_ops();
        assert_eq!(ops.len(), 3);
        let orders: Vec<i64> = ops
            .iter()
            .map(|op| match op {
                Op::TopKInsert { order, .. } => order.primary(),
                other => panic!("unexpected merge op {other:?}"),
            })
            .collect();
        assert!(orders.contains(&49));
        assert!(orders.contains(&48));
        assert!(orders.contains(&47));
    }

    #[test]
    fn mismatched_op_is_rejected() {
        let mut s = Slice::identity(OpKind::Add, 8);
        let err = s.apply(&Op::Max(3)).unwrap_err();
        assert!(matches!(err, TxError::TypeMismatch { .. }));
    }

    /// The core commutativity property (§4): applying a set of operations to
    /// per-core slices and merging gives the same result as applying them to
    /// the global value directly, for any assignment of operations to cores.
    #[test]
    fn slice_then_merge_equals_direct_application() {
        let ops: Vec<Op> = vec![Op::Add(5), Op::Add(-2), Op::Add(11), Op::Add(7), Op::Add(-9)];
        let direct = ops
            .iter()
            .fold(Value::Int(100), |acc, op| op.apply_to(Some(&acc)).unwrap());

        // Distribute across 3 "cores" in an arbitrary pattern.
        let mut slices = vec![Slice::identity(OpKind::Add, 8); 3];
        for (i, op) in ops.iter().enumerate() {
            slices[i % 3].apply(op).unwrap();
        }
        let mut merged = Value::Int(100);
        for s in slices {
            for op in s.into_merge_ops() {
                merged = op.apply_to(Some(&merged)).unwrap();
            }
        }
        assert_eq!(merged, direct);
    }
}
