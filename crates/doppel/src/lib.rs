//! Doppel: an in-memory transactional database using **phase reconciliation**.
//!
//! This crate is a Rust implementation of the system described in
//! *Phase Reconciliation for Contended In-Memory Transactions*
//! (Narula, Cutler, Kohler, Morris — OSDI 2014).
//!
//! # How it works
//!
//! Conventional concurrency control executes conflicting transactions
//! serially: OCC aborts and retries them, 2PL makes them wait. When many
//! transactions update the same few records (popular auctions, vote counters,
//! top-K lists) this serial execution leaves most cores idle.
//!
//! Doppel instead cycles through three kinds of phases (§5):
//!
//! * **joined phases** execute any transaction under Silo-style OCC;
//! * **split phases** mark the most contended records as *split*: the one
//!   *selected*, commutative operation on such a record (e.g. `Add`, `Max`,
//!   `TopKInsert`) is applied to a per-core slice with no coordination at
//!   all, so conflicting writers get parallel speedup; any other access to a
//!   split record stashes the transaction until the next joined phase;
//! * **reconciliation** merges the per-core slices back into the global store
//!   in O(cores) time as each worker acknowledges the split→joined
//!   transition.
//!
//! Which records to split is decided automatically by sampling conflicts in
//! joined phases and writes/stashes in split phases (§5.5).
//!
//! # Crate layout
//!
//! | module | contents | paper |
//! |---|---|---|
//! | [`phase`] | phase state machine and transition barrier | §5.4 |
//! | [`slices`] | per-core slices and merge functions | §4, Figures 4–5 |
//! | [`split_registry`] | the per-phase set of split records | §4 guideline 3 |
//! | [`classify`] | conflict/write/stash sampling and split decisions | §5.5 |
//! | [`txn`] | the joined/split transaction context | §5.1–5.2, Figures 2–3 |
//! | [`worker`] | per-core worker: execution, stashing, reconciliation | §5.2–5.3 |
//! | [`coordinator`] | the background phase coordinator with feedback | §5.4 |
//! | [`db`] | the [`DoppelDb`] facade implementing [`doppel_common::Engine`] | §6 |
//!
//! # Quick start
//!
//! ```
//! use doppel_common::{DoppelConfig, Engine, Key, OpKind, ProcedureFn, Value};
//! use doppel_db::{DoppelDb, Phase};
//! use std::sync::Arc;
//!
//! // One worker, manual phase control (benchmarks use many workers plus the
//! // automatic coordinator: `DoppelDb::start(config)`).
//! let db = DoppelDb::new(DoppelConfig::with_workers(1));
//! db.load(Key::raw(42), Value::Int(0));
//! db.label_split(Key::raw(42), OpKind::Add);
//!
//! let mut worker = db.handle(0);
//! let like = Arc::new(ProcedureFn::new("like", |tx| tx.add(Key::raw(42), 1)));
//!
//! // Joined phase: increments run under OCC.
//! worker.execute(like.clone());
//!
//! // Split phase: increments go to this core's slice, conflict-free.
//! db.request_phase(Phase::Split);
//! worker.safepoint();
//! worker.execute(like.clone());
//!
//! // Reconciliation happens as the worker acknowledges the next transition.
//! db.request_phase(Phase::Joined);
//! worker.safepoint();
//! assert_eq!(db.global_get(Key::raw(42)), Some(Value::Int(2)));
//! ```

pub mod classify;
pub mod coordinator;
pub mod db;
pub mod phase;
pub mod shared;
pub mod slices;
pub mod split_registry;
pub mod txn;
pub mod worker;

pub use classify::{Classifier, ClassifyOutcome, PhaseSample, WorkerSample};
pub use db::DoppelDb;
pub use phase::{Phase, PhaseState, PhaseTarget};
pub use slices::Slice;
pub use split_registry::{SplitRegistry, SplitSet};
pub use txn::{DoppelTx, TxBuffers};
pub use worker::DoppelWorker;

pub use doppel_common::{DoppelConfig, Engine, Outcome, Procedure, ProcedureFn, TxHandle};
