//! Phase state and the transition barrier (§5.4).
//!
//! "Transitions between phases are managed by a coordinator thread and apply
//! globally, across the entire database. To initiate a transition … the
//! coordinator begins by publishing the phase change in a global variable.
//! Workers check this variable between transactions; when they notice a
//! change, they stop processing new transactions, acknowledge the change, and
//! wait for permission to proceed. When all workers have acknowledged the
//! change, the coordinator releases them."
//!
//! In this implementation the *initiation* is done by whoever requests a
//! transition (the background coordinator thread, or a test calling
//! [`crate::DoppelDb::request_phase`]), while the *release* is performed by
//! the last worker to acknowledge: that worker runs the transition work
//! (classification, split-set publication) and then publishes the release.
//! This keeps the protocol identical to the paper's while making the engine
//! fully deterministic to drive from tests with a single worker.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The two execution phases. Reconciliation is not a standalone phase in the
/// state machine: each worker merges its per-core slices while acknowledging
/// the split→joined transition, exactly as §5.4 describes ("When a
/// split-phase worker notices a transition to the reconciliation phase, it
/// stops processing transactions, merges its per-core slices with the global
/// store, and then acknowledges the phase transition").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// All records reconciled; any transaction may run (OCC).
    Joined,
    /// Contended records are split into per-core slices; only the selected
    /// operation may touch them.
    Split,
}

impl Phase {
    fn bit(self) -> u64 {
        match self {
            Phase::Joined => 0,
            Phase::Split => 1,
        }
    }

    fn from_bit(bit: u64) -> Phase {
        if bit == 0 {
            Phase::Joined
        } else {
            Phase::Split
        }
    }
}

/// A pending or released transition target: sequence number plus phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseTarget {
    /// Monotonically increasing transition sequence number (0 = initial
    /// joined phase, never a real transition).
    pub seq: u64,
    /// The phase the database is moving into.
    pub phase: Phase,
}

/// Shared phase-transition state.
///
/// The packed `target` word is `(seq << 1) | phase_bit`; `released` stores
/// the sequence number of the last transition whose release has been
/// published. A transition `seq` is *pending* while `released < seq`.
#[derive(Debug)]
pub struct PhaseState {
    target: AtomicU64,
    released: AtomicU64,
    acks: Vec<CachePadded<AtomicU64>>,
    registered: Vec<CachePadded<AtomicBool>>,
}

impl PhaseState {
    /// Creates phase state for `workers` workers; the database starts in the
    /// joined phase with sequence 0.
    pub fn new(workers: usize) -> Self {
        PhaseState {
            target: AtomicU64::new(0),
            released: AtomicU64::new(0),
            acks: (0..workers).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            registered: (0..workers).map(|_| CachePadded::new(AtomicBool::new(false))).collect(),
        }
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.acks.len()
    }

    /// Marks a worker as registered: transitions wait for acknowledgements
    /// from registered workers only.
    pub fn register_worker(&self, core: usize) {
        self.registered[core].store(true, Ordering::Release);
    }

    /// Removes a worker from the barrier (its acknowledgement is no longer
    /// required). Called when a worker handle is dropped so that in-flight
    /// and future transitions do not wait for it forever.
    pub fn unregister_worker(&self, core: usize) {
        self.registered[core].store(false, Ordering::Release);
    }

    /// The most recently requested transition target.
    pub fn target(&self) -> PhaseTarget {
        let word = self.target.load(Ordering::Acquire);
        PhaseTarget { seq: word >> 1, phase: Phase::from_bit(word & 1) }
    }

    /// Sequence number of the last released transition.
    pub fn released_seq(&self) -> u64 {
        self.released.load(Ordering::Acquire)
    }

    /// The phase the database is currently executing in (i.e. of the last
    /// *released* transition; a pending transition does not change it).
    pub fn current_phase(&self) -> Phase {
        let target = self.target();
        if self.released_seq() >= target.seq {
            target.phase
        } else {
            // The pending transition has not been released: the database is
            // still in the opposite phase.
            match target.phase {
                Phase::Joined => Phase::Split,
                Phase::Split => Phase::Joined,
            }
        }
    }

    /// True if a requested transition has not yet been released.
    pub fn transition_pending(&self) -> bool {
        self.released_seq() < self.target().seq
    }

    /// Publishes a new transition target, returning its sequence number.
    /// Callers must not request a new transition while one is pending.
    pub fn request(&self, phase: Phase) -> u64 {
        debug_assert!(!self.transition_pending(), "transition requested while one is pending");
        let seq = (self.target.load(Ordering::Relaxed) >> 1) + 1;
        self.target.store((seq << 1) | phase.bit(), Ordering::Release);
        seq
    }

    /// Records worker `core`'s acknowledgement of transition `seq`.
    pub fn ack(&self, core: usize, seq: u64) {
        self.acks[core].store(seq, Ordering::Release);
    }

    /// The transition sequence worker `core` has acknowledged.
    pub fn acked(&self, core: usize) -> u64 {
        self.acks[core].load(Ordering::Acquire)
    }

    /// True when every registered worker has acknowledged transition `seq`.
    pub fn all_acked(&self, seq: u64) -> bool {
        self.acks
            .iter()
            .zip(self.registered.iter())
            .all(|(ack, reg)| !reg.load(Ordering::Acquire) || ack.load(Ordering::Acquire) >= seq)
    }

    /// Publishes the release of transition `seq`.
    pub fn release(&self, seq: u64) {
        self.released.store(seq, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_joined() {
        let p = PhaseState::new(2);
        assert_eq!(p.current_phase(), Phase::Joined);
        assert_eq!(p.target().seq, 0);
        assert!(!p.transition_pending());
        assert_eq!(p.workers(), 2);
    }

    #[test]
    fn request_ack_release_cycle() {
        let p = PhaseState::new(2);
        p.register_worker(0);
        p.register_worker(1);

        let seq = p.request(Phase::Split);
        assert_eq!(seq, 1);
        assert!(p.transition_pending());
        // Until released, the database is still in the joined phase.
        assert_eq!(p.current_phase(), Phase::Joined);

        assert!(!p.all_acked(seq));
        p.ack(0, seq);
        assert!(!p.all_acked(seq));
        p.ack(1, seq);
        assert!(p.all_acked(seq));

        p.release(seq);
        assert!(!p.transition_pending());
        assert_eq!(p.current_phase(), Phase::Split);

        // And back to joined.
        let seq2 = p.request(Phase::Joined);
        assert_eq!(seq2, 2);
        assert_eq!(p.current_phase(), Phase::Split);
        p.ack(0, seq2);
        p.ack(1, seq2);
        p.release(seq2);
        assert_eq!(p.current_phase(), Phase::Joined);
    }

    #[test]
    fn unregistered_workers_do_not_block_acks() {
        let p = PhaseState::new(4);
        p.register_worker(0);
        p.register_worker(2);
        let seq = p.request(Phase::Split);
        p.ack(0, seq);
        assert!(!p.all_acked(seq));
        p.ack(2, seq);
        assert!(p.all_acked(seq), "workers 1 and 3 never registered");
    }

    #[test]
    fn phase_bit_roundtrip() {
        assert_eq!(Phase::from_bit(Phase::Joined.bit()), Phase::Joined);
        assert_eq!(Phase::from_bit(Phase::Split.bit()), Phase::Split);
    }

    #[test]
    fn acked_tracks_per_worker() {
        let p = PhaseState::new(2);
        p.register_worker(0);
        p.register_worker(1);
        let seq = p.request(Phase::Split);
        assert_eq!(p.acked(0), 0);
        p.ack(0, seq);
        assert_eq!(p.acked(0), seq);
        assert_eq!(p.acked(1), 0);
    }
}
