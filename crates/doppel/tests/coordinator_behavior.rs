//! Tests of the coordinator feedback rules (§5.4) and of worker lifecycle
//! corner cases that the in-module unit tests cannot cover.

use doppel_common::{DoppelConfig, Engine, Key, OpKind, Outcome, ProcedureFn, TxError, Value};
use doppel_db::{DoppelDb, Phase};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// "If, in a joined phase, no records appear contended … the coordinator
/// delays the next split phase": an uncontended workload must never enter a
/// split phase even though the coordinator is running.
#[test]
fn uncontended_workload_never_enters_split_phases() {
    let db = Arc::new(DoppelDb::start(DoppelConfig {
        workers: 2,
        phase_len: Duration::from_millis(2),
        ..DoppelConfig::default()
    }));
    for k in 0..10_000u64 {
        db.load(Key::raw(k), Value::Int(0));
    }
    let mut handles = Vec::new();
    for core in 0..2usize {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut w = db.handle(core);
            // Each worker touches its own disjoint key range: zero conflicts.
            let base = core as u64 * 5_000;
            for i in 0..20_000u64 {
                let key = Key::raw(base + (i % 5_000));
                let proc = Arc::new(ProcedureFn::new("incr", move |tx| tx.add(key, 1)));
                match w.execute(proc) {
                    Outcome::Committed(_) => {}
                    Outcome::Aborted(TxError::Shutdown) => break,
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    db.shutdown();
    let stats = db.stats();
    assert_eq!(stats.split_phases, 0, "nothing was contended, so no split phase should run");
    assert_eq!(stats.total_splits, 0);
    assert!(stats.commits >= 40_000 - 2);
}

/// "If, in a split phase, workers have to abort and stash too many
/// transactions, the coordinator hurries the next joined phase": with a
/// read-only workload against a manually split key, split phases must end
/// well before the nominal phase length.
#[test]
fn stash_storm_hurries_the_joined_phase() {
    let phase_len = Duration::from_millis(200);
    let db = Arc::new(DoppelDb::start(DoppelConfig {
        workers: 1,
        phase_len,
        split_min_conflicts: 1,
        split_conflict_fraction: 0.0,
        unsplit_write_fraction: 0.0,
        // Hurry as soon as >30% of split-phase transactions are stashed.
        feedback: doppel_common::PhaseFeedback {
            hurry_joined_stash_fraction: 0.3,
            min_split_fraction: 0.05,
            ..Default::default()
        },
        ..DoppelConfig::default()
    }));
    let hot = Key::raw(0);
    db.load(hot, Value::Int(1));
    db.label_split(hot, OpKind::Add);

    let worker_db = Arc::clone(&db);
    let worker = std::thread::spawn(move || {
        let mut w = worker_db.handle(0);
        let started = Instant::now();
        let mut first_stash_completion: Option<Duration> = None;
        let mut submitted = 0u64;
        // Reads of the split key: all of them stash during split phases.
        while started.elapsed() < Duration::from_millis(600) {
            let proc = Arc::new(ProcedureFn::read_only("read-hot", move |tx| {
                tx.get(Key::raw(0)).map(|_| ())
            }));
            match w.execute(proc) {
                Outcome::Aborted(TxError::Shutdown) => break,
                _ => submitted += 1,
            }
            for completion in w.take_completions() {
                if completion.result.is_ok() && first_stash_completion.is_none() {
                    first_stash_completion = Some(started.elapsed());
                }
            }
        }
        (submitted, first_stash_completion)
    });
    let (submitted, first_completion) = worker.join().unwrap();
    db.shutdown();

    assert!(submitted > 0);
    let stats = db.stats();
    if stats.stashes > 0 {
        // At least one split phase stashed reads; the hurry rule must have cut
        // that split phase short, so the first stashed read completed well
        // before a full 200 ms phase elapsed on top of the joined phase.
        let completed_at = first_completion.expect("a stashed read should have completed");
        assert!(
            completed_at < Duration::from_millis(550),
            "stashed reads waited {completed_at:?}, the split phase was not hurried"
        );
    }
}

/// Workers that disappear mid-split-phase must not lose slice updates or hang
/// the remaining workers' phase transitions.
#[test]
fn worker_dropped_mid_split_phase_flushes_and_unblocks() {
    let db = DoppelDb::new(DoppelConfig {
        workers: 2,
        split_min_conflicts: 1,
        split_conflict_fraction: 0.0,
        unsplit_write_fraction: 0.0,
        ..DoppelConfig::default()
    });
    let hot = Key::raw(0);
    db.load(hot, Value::Int(0));
    db.label_split(hot, OpKind::Add);

    let w0 = db.handle(0);
    let w1 = db.handle(1);
    db.request_phase(Phase::Split);

    // A worker waiting for the transition release blocks until every other
    // worker has acknowledged, so the two workers must pass their safepoints
    // on separate threads.
    let run_split_phase_work = |mut w: Box<dyn doppel_common::TxHandle>| {
        std::thread::spawn(move || {
            w.safepoint();
            let incr = Arc::new(ProcedureFn::new("incr", move |tx| tx.add(Key::raw(0), 1)));
            for _ in 0..10 {
                assert!(w.execute(incr.clone()).is_committed());
            }
            w
        })
    };
    let t0 = run_split_phase_work(w0);
    let t1 = run_split_phase_work(w1);
    let mut w0 = t0.join().unwrap();
    let w1 = t1.join().unwrap();
    assert_eq!(db.current_phase(), Phase::Split);

    // Worker 1 goes away while the split phase is still running (its slice
    // holds 10 buffered increments).
    drop(w1);

    // The remaining worker can still drive the database back to joined.
    db.request_phase(Phase::Joined);
    w0.safepoint();
    assert_eq!(db.current_phase(), Phase::Joined);
    assert_eq!(
        db.global_get(hot).unwrap().as_int().unwrap(),
        20,
        "the dropped worker's slice must have been merged"
    );
}

/// The coordinator shuts down cleanly even while a transition is pending and
/// no worker will ever acknowledge it (e.g. all workers already exited).
#[test]
fn shutdown_with_unacknowledged_transition_does_not_hang() {
    let db = DoppelDb::start(DoppelConfig {
        workers: 2,
        phase_len: Duration::from_millis(1),
        split_min_conflicts: 1,
        split_conflict_fraction: 0.0,
        feedback: doppel_common::PhaseFeedback {
            delay_split_when_uncontended: false,
            ..Default::default()
        },
        ..DoppelConfig::default()
    });
    db.load(Key::raw(0), Value::Int(0));
    {
        // Create a worker so transitions require its acknowledgement, commit a
        // little work, then drop it while the coordinator keeps requesting
        // phases.
        let mut w = db.handle(0);
        let proc = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(0), 1)));
        for _ in 0..100 {
            let _ = w.execute(proc.clone());
        }
    }
    std::thread::sleep(Duration::from_millis(20));
    let started = Instant::now();
    db.shutdown();
    assert!(started.elapsed() < Duration::from_secs(5), "shutdown must not hang");
}
