//! Phase-aware durability for the Doppel workspace: write-ahead logging,
//! group commit, checkpointing and crash recovery.
//!
//! The paper's durability observation is that phase reconciliation makes
//! logging *cheaper*, not harder: during a split phase, Doppel does not log
//! the per-operation stream on split records — it logs **one merged delta per
//! split key** when workers reconcile at the split→joined transition, i.e.
//! O(split keys) log records per phase instead of O(operations). Joined-phase
//! commits (and the OCC / 2PL / Atomic baselines) log conventionally: one
//! record per committed transaction carrying its write set.
//!
//! The pieces:
//!
//! * [`Wal`] — the append-only, CRC-checksummed, length-prefixed record log
//!   with configurable group commit (batch N records or T elapsed per fsync)
//!   and crash-point injection. Implements [`doppel_common::CommitSink`], the
//!   commit hook every engine calls.
//! * [`checkpoint`] — store snapshots via [`doppel_common::Engine::for_each_record`],
//!   written atomically, newest-valid-wins with fallback.
//! * [`recover`] / [`recover_into`] — load the newest valid checkpoint,
//!   replay the log tail through each operation's own semantics, truncate the
//!   log at the first torn or corrupt record.
//!
//! # Example
//!
//! ```
//! use doppel_common::{CommitSink, DurabilityConfig, Engine, Key, ProcedureFn, Value};
//! use doppel_wal::{recover_into, TempWalDir, Wal};
//! use std::sync::Arc;
//!
//! let dir = TempWalDir::new("doc");
//! {
//!     let engine = doppel_occ::OccEngine::new(1, 16);
//!     let wal = Arc::new(Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap());
//!     engine.attach_commit_sink(wal.clone());
//!     let mut h = engine.handle(0);
//!     let incr = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)));
//!     for _ in 0..5 {
//!         assert!(h.execute(incr.clone()).is_committed());
//!     }
//!     wal.sync();
//!     // The process "dies" here: nothing is checkpointed, the log is all we have.
//! }
//! let engine = doppel_occ::OccEngine::new(1, 16);
//! recover_into(&engine, dir.path()).unwrap();
//! assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(5)));
//! ```

pub mod checkpoint;
pub mod codec;
mod crc;
mod log;
mod recover;
mod tempdir;

pub use codec::CodecError;
pub use crc::crc32;
pub use log::{Wal, WalError, LOG_FILE, LOG_MAGIC};
pub use recover::{
    recover, recover_into, replay_recovered, InDoubtTxn, LogRecord, Recovered, RecoveryReport,
};
pub use tempdir::TempWalDir;

use doppel_common::{CommitSink, Engine};

/// Takes a checkpoint of a quiescent engine: flushes the log, snapshots the
/// store, and writes `checkpoint-<seq>.ckpt` covering everything logged so
/// far. Subsequent recovery loads the checkpoint and replays only the tail.
pub fn checkpoint_engine(wal: &Wal, engine: &dyn Engine) -> Result<u64, WalError> {
    wal.sync();
    checkpoint::checkpoint_engine(wal.dir(), engine, wal.durable_lsn())
}
