//! Crash recovery: load the newest valid checkpoint, replay the log tail,
//! truncate at the first torn or corrupt record.

use crate::checkpoint;
use crate::codec::{decode_key, decode_op, Dec};
use crate::crc::crc32;
use crate::log::{WalError, LOG_FILE, LOG_MAGIC, REC_COMMIT, REC_DELTA};
use doppel_common::{Engine, Key, Op, Tid};
use std::fs::OpenOptions;
use std::io::Read;
use std::path::Path;

/// One decoded log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// A conventionally committed transaction's write set.
    Commit {
        /// The commit TID.
        tid: Tid,
        /// The write set, in write-set order.
        writes: Vec<(Key, Op)>,
    },
    /// One split key's merged per-worker delta (Doppel reconciliation).
    MergedDelta {
        /// TID the reconciling worker published for the merged record.
        tid: Tid,
        /// The split key.
        key: Key,
        /// The merge operations produced by the per-core slice.
        ops: Vec<Op>,
    },
}

impl LogRecord {
    /// The `(key, op)` pairs this record replays, in order.
    pub fn replay_ops(&self) -> Vec<(Key, Op)> {
        match self {
            LogRecord::Commit { writes, .. } => writes.clone(),
            LogRecord::MergedDelta { key, ops, .. } => {
                ops.iter().map(|op| (*key, op.clone())).collect()
            }
        }
    }
}

/// Scans framed records in `bytes` starting at `from`, returning the decoded
/// records and the offset of the valid prefix's end (the truncation point:
/// the first torn or corrupt record starts there).
pub(crate) fn scan_valid_prefix(bytes: &[u8], from: u64) -> (Vec<LogRecord>, u64) {
    let mut records = Vec::new();
    let mut pos = from as usize;
    loop {
        // Header: len + crc.
        if bytes.len() - pos < 8 {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if bytes.len() - pos - 8 < len {
            break; // torn: payload shorter than the header promises
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // torn or corrupt payload
        }
        match decode_record(payload) {
            Ok(rec) => records.push(rec),
            // CRC-valid but undecodable: treat as corruption and stop — the
            // conservative choice, since nothing after it can be trusted to
            // be a record boundary we understand.
            Err(_) => break,
        }
        pos += 8 + len;
    }
    (records, pos as u64)
}

fn decode_record(payload: &[u8]) -> Result<LogRecord, WalError> {
    let mut d = Dec::new(payload);
    let kind = d.u8().map_err(|_| WalError::Corrupt("empty record payload"))?;
    let rec = match kind {
        REC_COMMIT => {
            let tid = Tid(d.u64().map_err(|_| WalError::Corrupt("commit tid"))?);
            let n = d.u32().map_err(|_| WalError::Corrupt("commit count"))?;
            let mut writes = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let key = decode_key(&mut d).map_err(|_| WalError::Corrupt("commit key"))?;
                let op = decode_op(&mut d).map_err(|_| WalError::Corrupt("commit op"))?;
                writes.push((key, op));
            }
            LogRecord::Commit { tid, writes }
        }
        REC_DELTA => {
            let tid = Tid(d.u64().map_err(|_| WalError::Corrupt("delta tid"))?);
            let key = decode_key(&mut d).map_err(|_| WalError::Corrupt("delta key"))?;
            let n = d.u32().map_err(|_| WalError::Corrupt("delta count"))?;
            let mut ops = Vec::with_capacity(n as usize);
            for _ in 0..n {
                ops.push(decode_op(&mut d).map_err(|_| WalError::Corrupt("delta op"))?);
            }
            LogRecord::MergedDelta { tid, key, ops }
        }
        _ => return Err(WalError::Corrupt("unknown record kind")),
    };
    if !d.is_done() {
        return Err(WalError::Corrupt("trailing bytes in record"));
    }
    Ok(rec)
}

/// Everything recovery found in a WAL directory.
#[derive(Debug, Default)]
pub struct Recovered {
    /// `(key, value)` pairs from the newest valid checkpoint (empty when no
    /// checkpoint exists).
    pub checkpoint: Vec<(Key, doppel_common::Value)>,
    /// Sequence number of the checkpoint used, if any.
    pub checkpoint_seq: Option<u64>,
    /// Log records after the checkpoint, in append order.
    pub records: Vec<LogRecord>,
    /// End of the log's valid prefix.
    pub log_end: u64,
    /// `Some(end)` when a torn/corrupt tail was found (and truncated).
    pub truncated_at: Option<u64>,
}

/// Statistics of a [`recover_into`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records loaded from the checkpoint.
    pub checkpoint_records: u64,
    /// Commit records replayed from the log.
    pub commit_records: u64,
    /// Merged-delta records replayed from the log.
    pub delta_records: u64,
    /// `Some(end)` when the log had a torn tail that was truncated.
    pub truncated_at: Option<u64>,
}

impl RecoveryReport {
    /// Total log records replayed.
    pub fn log_records(&self) -> u64 {
        self.commit_records + self.delta_records
    }
}

/// Reads a WAL directory: newest valid checkpoint plus the decodable log
/// tail. The log file is truncated at the first torn or corrupt record so a
/// new [`crate::Wal`] can append cleanly afterwards.
///
/// A directory without a log file recovers to the empty state (fresh start).
pub fn recover(dir: impl AsRef<Path>) -> Result<Recovered, WalError> {
    let dir = dir.as_ref();
    let path = dir.join(LOG_FILE);
    if !path.exists() {
        return Ok(Recovered::default());
    }
    let mut bytes = Vec::new();
    OpenOptions::new().read(true).open(&path)?.read_to_end(&mut bytes)?;
    if bytes.len() < LOG_MAGIC.len() || &bytes[..LOG_MAGIC.len()] != LOG_MAGIC {
        return Err(WalError::Corrupt("log file has wrong magic"));
    }

    let (checkpoint_seq, checkpoint, ckpt_offset) = match checkpoint::load_newest(dir)? {
        Some(c) => (Some(c.seq), c.records, c.log_offset),
        None => (None, Vec::new(), LOG_MAGIC.len() as u64),
    };
    // Guard against a checkpoint pointing past the (possibly truncated) log.
    let start = ckpt_offset.min(bytes.len() as u64);

    let (records, log_end) = scan_valid_prefix(&bytes, start);
    let truncated_at = if log_end < bytes.len() as u64 {
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(log_end)?;
        file.sync_data()?;
        Some(log_end)
    } else {
        None
    };
    Ok(Recovered { checkpoint, checkpoint_seq, records, log_end, truncated_at })
}

/// Recovers a WAL directory *into* an engine: loads the checkpoint, then
/// replays every log record through the operations' own semantics
/// ([`Op::apply_to`]), so all registered splittable operations replay exactly
/// as they would have applied.
///
/// The engine must be freshly constructed and quiescent. On success the
/// engine's `recovered_txns` statistic reflects the replayed record count.
pub fn recover_into(engine: &dyn Engine, dir: impl AsRef<Path>) -> Result<RecoveryReport, WalError> {
    let recovered = recover(dir)?;
    let mut report = RecoveryReport {
        checkpoint_records: recovered.checkpoint.len() as u64,
        truncated_at: recovered.truncated_at,
        ..Default::default()
    };
    for (k, v) in recovered.checkpoint {
        engine.load(k, v);
    }
    for record in &recovered.records {
        match record {
            LogRecord::Commit { .. } => report.commit_records += 1,
            LogRecord::MergedDelta { .. } => report.delta_records += 1,
        }
        for (k, op) in record.replay_ops() {
            let current = engine.global_get(k);
            let new = op
                .apply_to(current.as_ref())
                .map_err(|e| WalError::Replay(format!("replaying {op} on {k}: {e:?}")))?;
            engine.load(k, new);
        }
    }
    engine.note_recovered(report.log_records());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Wal;
    use crate::tempdir::TempWalDir;
    use doppel_common::{CommitSink, CommitSinkExt, DurabilityConfig, Value};

    fn tid(n: u64) -> Tid {
        Tid::from_parts(n, 0)
    }

    #[test]
    fn missing_directory_recovers_empty() {
        let dir = TempWalDir::new("missing");
        let r = recover(dir.path()).unwrap();
        assert!(r.records.is_empty());
        assert!(r.checkpoint.is_empty());
        assert_eq!(r.truncated_at, None);
    }

    #[test]
    fn records_roundtrip_through_the_file() {
        let dir = TempWalDir::new("roundtrip");
        {
            let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
            wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Add(5)), (Key::raw(2), Op::Put(Value::from("x")))]);
            wal.log_merged_delta(tid(2), Key::raw(9), &[Op::Add(40)]);
        }
        let r = recover(dir.path()).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(
            r.records[0],
            LogRecord::Commit {
                tid: tid(1),
                writes: vec![(Key::raw(1), Op::Add(5)), (Key::raw(2), Op::Put(Value::from("x")))],
            }
        );
        assert_eq!(
            r.records[1],
            LogRecord::MergedDelta { tid: tid(2), key: Key::raw(9), ops: vec![Op::Add(40)] }
        );
        assert_eq!(r.truncated_at, None);
    }

    #[test]
    fn torn_tail_is_truncated_once() {
        let dir = TempWalDir::new("torn");
        {
            let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
            wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Add(5))]);
        }
        let path = dir.path().join(LOG_FILE);
        let valid = std::fs::metadata(&path).unwrap().len();
        // A torn header + garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[200, 0, 0, 0, 1, 2, 3, 4, 9, 9]);
        std::fs::write(&path, &bytes).unwrap();

        let r = recover(dir.path()).unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.truncated_at, Some(valid));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid);

        // A second recovery sees a clean log.
        let r2 = recover(dir.path()).unwrap();
        assert_eq!(r2.records.len(), 1);
        assert_eq!(r2.truncated_at, None);
    }

    #[test]
    fn bitflip_in_payload_truncates_at_that_record() {
        let dir = TempWalDir::new("bitflip");
        {
            let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
            wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Add(5))]);
            wal.log_commit_slice(tid(2), &[(Key::raw(2), Op::Add(6))]);
        }
        let path = dir.path().join(LOG_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // corrupt the second record's payload
        std::fs::write(&path, &bytes).unwrap();

        let r = recover(dir.path()).unwrap();
        assert_eq!(r.records.len(), 1, "only the intact first record survives");
        assert!(r.truncated_at.is_some());
    }

    #[test]
    fn recover_into_replays_via_op_semantics() {
        let dir = TempWalDir::new("replay");
        {
            let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
            wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Add(5))]);
            wal.log_merged_delta(tid(2), Key::raw(1), &[Op::Add(7)]);
            wal.log_commit_slice(tid(3), &[(Key::raw(2), Op::Max(10))]);
        }
        let engine = doppel_occ::OccEngine::new(1, 16);
        let report = recover_into(&engine, dir.path()).unwrap();
        assert_eq!(report.commit_records, 2);
        assert_eq!(report.delta_records, 1);
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(12)));
        assert_eq!(engine.global_get(Key::raw(2)), Some(Value::Int(10)));
        assert_eq!(engine.stats().recovered_txns, 3);
    }
}
