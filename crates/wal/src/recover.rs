//! Crash recovery: load the newest valid checkpoint, replay the log tail,
//! truncate at the first torn or corrupt record.

use crate::checkpoint;
use crate::codec::{decode_key, decode_op, Dec};
use crate::crc::crc32;
use crate::log::{WalError, LOG_FILE, LOG_MAGIC, REC_COMMIT, REC_DECIDE, REC_DELTA, REC_PREPARE};
use doppel_common::{Engine, Key, Op, Tid};
use std::fs::OpenOptions;
use std::io::Read;
use std::path::Path;

/// One decoded log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// A conventionally committed transaction's write set.
    Commit {
        /// The commit TID.
        tid: Tid,
        /// The write set, in write-set order.
        writes: Vec<(Key, Op)>,
    },
    /// One split key's merged per-worker delta (Doppel reconciliation).
    MergedDelta {
        /// TID the reconciling worker published for the merged record.
        tid: Tid,
        /// The split key.
        key: Key,
        /// The merge operations produced by the per-core slice.
        ops: Vec<Op>,
    },
    /// A two-phase-commit prepare: this shard voted yes for `txid` with this
    /// local write set. Not replayed — the writes apply only on decide.
    Prepare {
        /// Distributed transaction id (coordinator-assigned).
        txid: u64,
        /// The shard-local write set the vote covers.
        writes: Vec<(Key, Op)>,
    },
    /// A two-phase-commit decision for a previously prepared `txid`. Not
    /// replayed — a commit's effects are applied through the engine and land
    /// in an ordinary commit record.
    Decide {
        /// Distributed transaction id.
        txid: u64,
        /// True for commit, false for abort.
        commit: bool,
    },
}

impl LogRecord {
    /// The `(key, op)` pairs this record replays, in order.
    ///
    /// Prepare and decide records replay nothing: prepared writes are
    /// applied only when the decision arrives, and a decided commit's
    /// effects were logged as an ordinary commit record by the engine.
    pub fn replay_ops(&self) -> Vec<(Key, Op)> {
        match self {
            LogRecord::Commit { writes, .. } => writes.clone(),
            LogRecord::MergedDelta { key, ops, .. } => {
                ops.iter().map(|op| (*key, op.clone())).collect()
            }
            LogRecord::Prepare { .. } | LogRecord::Decide { .. } => Vec::new(),
        }
    }
}

/// A prepared-but-undecided distributed transaction surfaced by recovery:
/// this shard voted yes and must hold the transaction's writes (and locks)
/// until the coordinator re-delivers the decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InDoubtTxn {
    /// Distributed transaction id.
    pub txid: u64,
    /// The shard-local write set from the prepare record.
    pub writes: Vec<(Key, Op)>,
}

/// Scans framed records in `bytes` starting at `from`, returning the decoded
/// records and the offset of the valid prefix's end (the truncation point:
/// the first torn or corrupt record starts there).
pub(crate) fn scan_valid_prefix(bytes: &[u8], from: u64) -> (Vec<LogRecord>, u64) {
    let mut records = Vec::new();
    let mut pos = from as usize;
    loop {
        // Header: len + crc.
        if bytes.len() - pos < 8 {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if bytes.len() - pos - 8 < len {
            break; // torn: payload shorter than the header promises
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // torn or corrupt payload
        }
        match decode_record(payload) {
            Ok(rec) => records.push(rec),
            // CRC-valid but undecodable: treat as corruption and stop — the
            // conservative choice, since nothing after it can be trusted to
            // be a record boundary we understand.
            Err(_) => break,
        }
        pos += 8 + len;
    }
    (records, pos as u64)
}

fn decode_record(payload: &[u8]) -> Result<LogRecord, WalError> {
    let mut d = Dec::new(payload);
    let kind = d.u8().map_err(|_| WalError::Corrupt("empty record payload"))?;
    let rec = match kind {
        REC_COMMIT => {
            let tid = Tid(d.u64().map_err(|_| WalError::Corrupt("commit tid"))?);
            let n = d.u32().map_err(|_| WalError::Corrupt("commit count"))?;
            let mut writes = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let key = decode_key(&mut d).map_err(|_| WalError::Corrupt("commit key"))?;
                let op = decode_op(&mut d).map_err(|_| WalError::Corrupt("commit op"))?;
                writes.push((key, op));
            }
            LogRecord::Commit { tid, writes }
        }
        REC_DELTA => {
            let tid = Tid(d.u64().map_err(|_| WalError::Corrupt("delta tid"))?);
            let key = decode_key(&mut d).map_err(|_| WalError::Corrupt("delta key"))?;
            let n = d.u32().map_err(|_| WalError::Corrupt("delta count"))?;
            let mut ops = Vec::with_capacity(n as usize);
            for _ in 0..n {
                ops.push(decode_op(&mut d).map_err(|_| WalError::Corrupt("delta op"))?);
            }
            LogRecord::MergedDelta { tid, key, ops }
        }
        REC_PREPARE => {
            let txid = d.u64().map_err(|_| WalError::Corrupt("prepare txid"))?;
            let n = d.u32().map_err(|_| WalError::Corrupt("prepare count"))?;
            let mut writes = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let key = decode_key(&mut d).map_err(|_| WalError::Corrupt("prepare key"))?;
                let op = decode_op(&mut d).map_err(|_| WalError::Corrupt("prepare op"))?;
                writes.push((key, op));
            }
            LogRecord::Prepare { txid, writes }
        }
        REC_DECIDE => {
            let txid = d.u64().map_err(|_| WalError::Corrupt("decide txid"))?;
            let commit = d.u8().map_err(|_| WalError::Corrupt("decide flag"))?;
            LogRecord::Decide { txid, commit: commit != 0 }
        }
        _ => return Err(WalError::Corrupt("unknown record kind")),
    };
    if !d.is_done() {
        return Err(WalError::Corrupt("trailing bytes in record"));
    }
    Ok(rec)
}

/// Everything recovery found in a WAL directory.
#[derive(Debug, Default)]
pub struct Recovered {
    /// `(key, value)` pairs from the newest valid checkpoint (empty when no
    /// checkpoint exists).
    pub checkpoint: Vec<(Key, doppel_common::Value)>,
    /// Sequence number of the checkpoint used, if any.
    pub checkpoint_seq: Option<u64>,
    /// Log records after the checkpoint, in append order.
    pub records: Vec<LogRecord>,
    /// End of the log's valid prefix.
    pub log_end: u64,
    /// `Some(end)` when a torn/corrupt tail was found (and truncated).
    pub truncated_at: Option<u64>,
}

impl Recovered {
    /// The in-doubt distributed transactions: prepare records in the log
    /// tail with no matching decide record, in prepare order. These voted
    /// yes before the crash, so the shard must re-acquire their locks and
    /// wait for the coordinator to re-deliver the decision.
    pub fn in_doubt(&self) -> Vec<InDoubtTxn> {
        let mut decided = std::collections::HashSet::new();
        for rec in &self.records {
            if let LogRecord::Decide { txid, .. } = rec {
                decided.insert(*txid);
            }
        }
        self.records
            .iter()
            .filter_map(|rec| match rec {
                LogRecord::Prepare { txid, writes } if !decided.contains(txid) => {
                    Some(InDoubtTxn { txid: *txid, writes: writes.clone() })
                }
                _ => None,
            })
            .collect()
    }
}

/// Statistics of a [`recover_into`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records loaded from the checkpoint.
    pub checkpoint_records: u64,
    /// Commit records replayed from the log.
    pub commit_records: u64,
    /// Merged-delta records replayed from the log.
    pub delta_records: u64,
    /// Two-phase-commit prepare records seen (not replayed).
    pub prepare_records: u64,
    /// Two-phase-commit decide records seen (not replayed).
    pub decide_records: u64,
    /// Prepared-but-undecided transactions left in-doubt by the crash.
    pub in_doubt: u64,
    /// `Some(end)` when the log had a torn tail that was truncated.
    pub truncated_at: Option<u64>,
}

impl RecoveryReport {
    /// Total log records replayed (prepare/decide records carry no replayable
    /// writes and are not counted).
    pub fn log_records(&self) -> u64 {
        self.commit_records + self.delta_records
    }
}

/// Reads a WAL directory: newest valid checkpoint plus the decodable log
/// tail. The log file is truncated at the first torn or corrupt record so a
/// new [`crate::Wal`] can append cleanly afterwards.
///
/// A directory without a log file recovers to the empty state (fresh start).
pub fn recover(dir: impl AsRef<Path>) -> Result<Recovered, WalError> {
    let dir = dir.as_ref();
    let path = dir.join(LOG_FILE);
    if !path.exists() {
        return Ok(Recovered::default());
    }
    let mut bytes = Vec::new();
    OpenOptions::new().read(true).open(&path)?.read_to_end(&mut bytes)?;
    if bytes.len() < LOG_MAGIC.len() || &bytes[..LOG_MAGIC.len()] != LOG_MAGIC {
        return Err(WalError::Corrupt("log file has wrong magic"));
    }

    let (checkpoint_seq, checkpoint, ckpt_offset) = match checkpoint::load_newest(dir)? {
        Some(c) => (Some(c.seq), c.records, c.log_offset),
        None => (None, Vec::new(), LOG_MAGIC.len() as u64),
    };
    // Guard against a checkpoint pointing past the (possibly truncated) log.
    let start = ckpt_offset.min(bytes.len() as u64);

    let (records, log_end) = scan_valid_prefix(&bytes, start);
    let truncated_at = if log_end < bytes.len() as u64 {
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(log_end)?;
        file.sync_data()?;
        Some(log_end)
    } else {
        None
    };
    Ok(Recovered { checkpoint, checkpoint_seq, records, log_end, truncated_at })
}

/// Recovers a WAL directory *into* an engine: loads the checkpoint, then
/// replays every log record through the operations' own semantics
/// ([`Op::apply_to`]), so all registered splittable operations replay exactly
/// as they would have applied.
///
/// The engine must be freshly constructed and quiescent. On success the
/// engine's `recovered_txns` statistic reflects the replayed record count.
pub fn recover_into(engine: &dyn Engine, dir: impl AsRef<Path>) -> Result<RecoveryReport, WalError> {
    let recovered = recover(dir)?;
    replay_recovered(engine, &recovered)
}

/// The replay half of [`recover_into`], split out so callers that also need
/// the in-doubt transactions ([`Recovered::in_doubt`]) can [`recover`] once
/// and replay from the same scan.
pub fn replay_recovered(
    engine: &dyn Engine,
    recovered: &Recovered,
) -> Result<RecoveryReport, WalError> {
    let mut report = RecoveryReport {
        checkpoint_records: recovered.checkpoint.len() as u64,
        truncated_at: recovered.truncated_at,
        ..Default::default()
    };
    for (k, v) in &recovered.checkpoint {
        engine.load(*k, v.clone());
    }
    for record in &recovered.records {
        match record {
            LogRecord::Commit { .. } => report.commit_records += 1,
            LogRecord::MergedDelta { .. } => report.delta_records += 1,
            LogRecord::Prepare { .. } => report.prepare_records += 1,
            LogRecord::Decide { .. } => report.decide_records += 1,
        }
        for (k, op) in record.replay_ops() {
            let current = engine.global_get(k);
            let new = op
                .apply_to(current.as_ref())
                .map_err(|e| WalError::Replay(format!("replaying {op} on {k}: {e:?}")))?;
            engine.load(k, new);
        }
    }
    report.in_doubt = recovered.in_doubt().len() as u64;
    engine.note_recovered(report.log_records());
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Wal;
    use crate::tempdir::TempWalDir;
    use doppel_common::{CommitSink, CommitSinkExt, DurabilityConfig, Value};

    fn tid(n: u64) -> Tid {
        Tid::from_parts(n, 0)
    }

    #[test]
    fn missing_directory_recovers_empty() {
        let dir = TempWalDir::new("missing");
        let r = recover(dir.path()).unwrap();
        assert!(r.records.is_empty());
        assert!(r.checkpoint.is_empty());
        assert_eq!(r.truncated_at, None);
    }

    #[test]
    fn records_roundtrip_through_the_file() {
        let dir = TempWalDir::new("roundtrip");
        {
            let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
            wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Add(5)), (Key::raw(2), Op::Put(Value::from("x")))]);
            wal.log_merged_delta(tid(2), Key::raw(9), &[Op::Add(40)]);
        }
        let r = recover(dir.path()).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(
            r.records[0],
            LogRecord::Commit {
                tid: tid(1),
                writes: vec![(Key::raw(1), Op::Add(5)), (Key::raw(2), Op::Put(Value::from("x")))],
            }
        );
        assert_eq!(
            r.records[1],
            LogRecord::MergedDelta { tid: tid(2), key: Key::raw(9), ops: vec![Op::Add(40)] }
        );
        assert_eq!(r.truncated_at, None);
    }

    #[test]
    fn torn_tail_is_truncated_once() {
        let dir = TempWalDir::new("torn");
        {
            let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
            wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Add(5))]);
        }
        let path = dir.path().join(LOG_FILE);
        let valid = std::fs::metadata(&path).unwrap().len();
        // A torn header + garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[200, 0, 0, 0, 1, 2, 3, 4, 9, 9]);
        std::fs::write(&path, &bytes).unwrap();

        let r = recover(dir.path()).unwrap();
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.truncated_at, Some(valid));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid);

        // A second recovery sees a clean log.
        let r2 = recover(dir.path()).unwrap();
        assert_eq!(r2.records.len(), 1);
        assert_eq!(r2.truncated_at, None);
    }

    #[test]
    fn bitflip_in_payload_truncates_at_that_record() {
        let dir = TempWalDir::new("bitflip");
        {
            let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
            wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Add(5))]);
            wal.log_commit_slice(tid(2), &[(Key::raw(2), Op::Add(6))]);
        }
        let path = dir.path().join(LOG_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // corrupt the second record's payload
        std::fs::write(&path, &bytes).unwrap();

        let r = recover(dir.path()).unwrap();
        assert_eq!(r.records.len(), 1, "only the intact first record survives");
        assert!(r.truncated_at.is_some());
    }

    #[test]
    fn prepare_and_decide_records_roundtrip() {
        let dir = TempWalDir::new("twopc-roundtrip");
        {
            let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
            wal.log_prepare(77, &[(Key::raw(1), Op::Add(5)), (Key::raw(2), Op::Max(9))]);
            wal.log_decide(77, true);
            wal.log_prepare(78, &[(Key::raw(3), Op::Add(1))]);
            wal.log_decide(78, false);
        }
        let r = recover(dir.path()).unwrap();
        assert_eq!(r.records.len(), 4);
        assert_eq!(
            r.records[0],
            LogRecord::Prepare {
                txid: 77,
                writes: vec![(Key::raw(1), Op::Add(5)), (Key::raw(2), Op::Max(9))],
            }
        );
        assert_eq!(r.records[1], LogRecord::Decide { txid: 77, commit: true });
        assert_eq!(r.records[3], LogRecord::Decide { txid: 78, commit: false });
        assert!(r.in_doubt().is_empty(), "decided txns are not in doubt");
    }

    #[test]
    fn undecided_prepare_is_in_doubt_and_not_replayed() {
        let dir = TempWalDir::new("twopc-in-doubt");
        {
            let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
            wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Add(5))]);
            wal.log_prepare(42, &[(Key::raw(1), Op::Add(100))]);
        }
        let engine = doppel_occ::OccEngine::new(1, 16);
        let recovered = recover(dir.path()).unwrap();
        let report = replay_recovered(&engine, &recovered).unwrap();
        assert_eq!(report.prepare_records, 1);
        assert_eq!(report.decide_records, 0);
        assert_eq!(report.in_doubt, 1);
        // The prepared (undecided) write must NOT be applied.
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(5)));
        let in_doubt = recovered.in_doubt();
        assert_eq!(in_doubt.len(), 1);
        assert_eq!(in_doubt[0].txid, 42);
        assert_eq!(in_doubt[0].writes, vec![(Key::raw(1), Op::Add(100))]);
    }

    #[test]
    fn prepare_is_durable_before_the_call_returns() {
        // The vote must not be sendable before the prepare record is on
        // disk: log_prepare/log_decide fsync immediately even under a
        // large group-commit batch.
        let dir = TempWalDir::new("twopc-durable");
        let cfg = DurabilityConfig {
            group_commit_batch: 1000,
            group_commit_interval: std::time::Duration::from_secs(3600),
            crash_at_byte: None,
        };
        let wal = Wal::open(dir.path(), cfg).unwrap();
        let r = wal.log_prepare(7, &[(Key::raw(1), Op::Add(1))]);
        assert_eq!(r.fsyncs, 1);
        assert_eq!(wal.durable_lsn(), wal.end_lsn());
        let r = wal.log_decide(7, true);
        assert_eq!(r.fsyncs, 1);
        assert_eq!(wal.durable_lsn(), wal.end_lsn());
    }

    #[test]
    fn recover_into_replays_via_op_semantics() {
        let dir = TempWalDir::new("replay");
        {
            let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
            wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Add(5))]);
            wal.log_merged_delta(tid(2), Key::raw(1), &[Op::Add(7)]);
            wal.log_commit_slice(tid(3), &[(Key::raw(2), Op::Max(10))]);
        }
        let engine = doppel_occ::OccEngine::new(1, 16);
        let report = recover_into(&engine, dir.path()).unwrap();
        assert_eq!(report.commit_records, 2);
        assert_eq!(report.delta_records, 1);
        assert_eq!(engine.global_get(Key::raw(1)), Some(Value::Int(12)));
        assert_eq!(engine.global_get(Key::raw(2)), Some(Value::Int(10)));
        assert_eq!(engine.stats().recovered_txns, 3);
    }
}
