//! The append-only write-ahead log with group commit and crash injection.
//!
//! File layout:
//!
//! ```text
//! [magic "DPLWAL01"]                                  8 bytes, once
//! repeated records:
//!   [len: u32 LE] [crc32(payload): u32 LE] [payload]  8 + len bytes
//! ```
//!
//! A record's payload starts with a kind byte:
//!
//! * `0x01` **commit** — `tid: u64`, `n: u32`, then `n × (key, op)`: one
//!   conventionally committed transaction's write set.
//! * `0x02` **merged delta** — `tid: u64`, `key`, `n: u32`, then `n × op`:
//!   one split key's per-worker merged delta, emitted at reconciliation.
//!   This is the paper-faithful fast path: O(split keys) records per phase
//!   instead of O(operations).
//! * `0x03` **prepare** — `txid: u64`, `n: u32`, then `n × (key, op)`: a
//!   cross-shard transaction's local write set, logged *before* this shard
//!   votes yes in two-phase commit. A prepare without a matching decide is
//!   an *in-doubt* transaction after a crash.
//! * `0x04` **decide** — `txid: u64`, `commit: u8`: the coordinator's
//!   decision for a previously prepared transaction. The decided writes are
//!   applied through the engine (and therefore appear as an ordinary commit
//!   record with a `Table::TxnMarker` marker key); the decide record only
//!   closes the in-doubt window.
//!
//! **Group commit**: appends are buffered; the batch is flushed and fsynced
//! once [`DurabilityConfig::group_commit_batch`] records have accumulated or
//! [`DurabilityConfig::group_commit_interval`] has elapsed since the last
//! fsync, whichever comes first. A record is *durable* only once its batch
//! has been fsynced ([`Wal::durable_lsn`]).
//!
//! **Crash injection**: when [`DurabilityConfig::crash_at_byte`] is set, the
//! log writes up to exactly that file offset and then behaves like a machine
//! that lost power — the tail of the in-flight batch is torn, nothing later
//! is ever written, and every subsequent call is a silent no-op. Recovery
//! must cope with the torn record this leaves behind; the crash-injection
//! test suites drive exactly that path.

use crate::codec::{encode_key, encode_op, put_u32, put_u64, put_u8};
use crate::crc::crc32;
use crate::recover::scan_valid_prefix;
use doppel_common::{CommitSink, DurabilityConfig, Key, LogReceipt, Op, Tid};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The log file's magic prefix (also the format version).
pub const LOG_MAGIC: &[u8; 8] = b"DPLWAL01";

/// Name of the log file inside a WAL directory.
pub const LOG_FILE: &str = "wal.log";

pub(crate) const REC_COMMIT: u8 = 0x01;
pub(crate) const REC_DELTA: u8 = 0x02;
pub(crate) const REC_PREPARE: u8 = 0x03;
pub(crate) const REC_DECIDE: u8 = 0x04;

/// Errors surfaced by the durability subsystem.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Corrupt bytes outside the torn tail (a CRC-valid record that fails to
    /// decode, or a checkpoint that cannot be parsed).
    Corrupt(&'static str),
    /// A decoded record could not be replayed (e.g. a type mismatch against
    /// the checkpointed value).
    Replay(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(m) => write!(f, "wal corruption: {m}"),
            WalError::Replay(m) => write!(f, "wal replay error: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

struct WalInner {
    file: File,
    /// Bytes durably on disk (flushed + fsynced).
    durable: u64,
    /// Logical end: `durable` plus the buffered batch.
    end: u64,
    /// The pending group-commit batch (encoded, framed records).
    buf: Vec<u8>,
    /// Records in `buf`.
    pending: u64,
    last_sync: Instant,
    /// Crash injection has fired: the "machine" is dead, every call no-ops.
    crashed: bool,
}

/// The write-ahead log. Shared by all of an engine's workers through
/// `Arc<Wal>`; implements [`CommitSink`] so engines depend only on the trait.
pub struct Wal {
    cfg: DurabilityConfig,
    dir: PathBuf,
    inner: Mutex<WalInner>,
}

impl Wal {
    /// Opens (or creates) the log inside `dir`.
    ///
    /// An existing log is scanned for its valid prefix and truncated at the
    /// first torn or corrupt record, so a process that crashed mid-write can
    /// reopen its directory and keep appending.
    pub fn open(dir: impl AsRef<Path>, cfg: DurabilityConfig) -> Result<Wal, WalError> {
        cfg.validate().map_err(|_| WalError::Corrupt("invalid durability config"))?;
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(LOG_FILE);
        // `truncate(false)`: an existing log is recovered, never clobbered.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;

        let mut existing = Vec::new();
        file.read_to_end(&mut existing)?;
        let valid_end = if existing.is_empty() {
            file.write_all(LOG_MAGIC)?;
            file.sync_data()?;
            LOG_MAGIC.len() as u64
        } else {
            if existing.len() < LOG_MAGIC.len() || &existing[..LOG_MAGIC.len()] != LOG_MAGIC {
                return Err(WalError::Corrupt("log file has wrong magic"));
            }
            let (_, valid_end) = scan_valid_prefix(&existing, LOG_MAGIC.len() as u64);
            valid_end
        };
        if valid_end < existing.len() as u64 {
            file.set_len(valid_end)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_end))?;

        Ok(Wal {
            cfg,
            dir,
            inner: Mutex::new(WalInner {
                file,
                durable: valid_end,
                end: valid_end,
                buf: Vec::new(),
                pending: 0,
                last_sync: Instant::now(),
                crashed: false,
            }),
        })
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The durability configuration.
    pub fn config(&self) -> &DurabilityConfig {
        &self.cfg
    }

    /// Offset up to which the log is durable (flushed and fsynced).
    pub fn durable_lsn(&self) -> u64 {
        self.inner.lock().durable
    }

    /// Logical end of the log, including the buffered (not yet durable)
    /// group-commit batch.
    pub fn end_lsn(&self) -> u64 {
        self.inner.lock().end
    }

    /// True once crash injection has fired; the log is dead from then on.
    pub fn is_crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Frames `payload` and appends it to the pending batch, flushing if the
    /// group-commit policy says so.
    fn append(&self, payload: Vec<u8>) -> LogReceipt {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return LogReceipt::default();
        }
        let framed_len = 8 + payload.len() as u64;
        put_u32(&mut inner.buf, payload.len() as u32);
        let crc = crc32(&payload);
        put_u32(&mut inner.buf, crc);
        inner.buf.extend_from_slice(&payload);
        inner.pending += 1;
        inner.end += framed_len;

        let mut receipt = LogReceipt { records: 1, bytes: framed_len, fsyncs: 0, batches: 0 };
        if inner.pending >= self.cfg.group_commit_batch as u64
            || inner.last_sync.elapsed() >= self.cfg.group_commit_interval
        {
            receipt = receipt.merge(self.flush_locked(&mut inner));
        }
        receipt
    }

    /// Flushes the pending batch: writes it (honouring crash injection) and
    /// fsyncs. Must be called with the lock held.
    fn flush_locked(&self, inner: &mut WalInner) -> LogReceipt {
        if inner.crashed || inner.buf.is_empty() {
            return LogReceipt::default();
        }
        let buf = std::mem::take(&mut inner.buf);
        inner.pending = 0;
        inner.last_sync = Instant::now();

        // Crash injection: stop writing at exactly `crash_at_byte`.
        if let Some(at) = self.cfg.crash_at_byte {
            let would_end = inner.durable + buf.len() as u64;
            if would_end > at {
                let keep = at.saturating_sub(inner.durable) as usize;
                // Write the torn prefix so the file deterministically ends at
                // the injected offset, then die. No fsync: the machine is
                // gone; sync_data here only makes the test file content
                // deterministic on the simulated "disk".
                let _ = inner.file.write_all(&buf[..keep]);
                let _ = inner.file.sync_data();
                inner.crashed = true;
                inner.durable = at.min(would_end);
                inner.end = inner.durable;
                return LogReceipt::default();
            }
        }

        // The happy path: a write failure is treated like a dead disk — the
        // log goes into the crashed state rather than panicking a worker.
        let started = std::time::Instant::now();
        if inner.file.write_all(&buf).is_err() || inner.file.sync_data().is_err() {
            inner.crashed = true;
            return LogReceipt::default();
        }
        inner.durable += buf.len() as u64;
        doppel_telemetry::trace::span_since(
            doppel_telemetry::EventKind::WalFsync,
            buf.len() as u64,
            started,
        );
        LogReceipt { records: 0, bytes: 0, fsyncs: 1, batches: 1 }
    }

    fn encode_commit(
        tid: Tid,
        writes: &mut dyn ExactSizeIterator<Item = (Key, &Op)>,
    ) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16 + writes.len() * 32);
        put_u8(&mut payload, REC_COMMIT);
        put_u64(&mut payload, tid.raw());
        put_u32(&mut payload, writes.len() as u32);
        for (k, op) in writes {
            encode_key(&mut payload, k);
            encode_op(&mut payload, op);
        }
        payload
    }

    /// Logs a two-phase-commit *prepare* record — `txid` plus this shard's
    /// local write set — and fsyncs immediately, regardless of the
    /// group-commit policy: the vote must not reach the coordinator before
    /// the prepare is durable.
    pub fn log_prepare(&self, txid: u64, writes: &[(Key, Op)]) -> LogReceipt {
        let mut payload = Vec::with_capacity(16 + writes.len() * 32);
        put_u8(&mut payload, REC_PREPARE);
        put_u64(&mut payload, txid);
        put_u32(&mut payload, writes.len() as u32);
        for (k, op) in writes {
            encode_key(&mut payload, *k);
            encode_op(&mut payload, op);
        }
        let receipt = self.append(payload);
        receipt.merge(self.sync())
    }

    /// Logs a two-phase-commit *decide* record and fsyncs immediately, so a
    /// restart after this call never re-reports the transaction as in-doubt.
    pub fn log_decide(&self, txid: u64, commit: bool) -> LogReceipt {
        let mut payload = Vec::with_capacity(10);
        put_u8(&mut payload, REC_DECIDE);
        put_u64(&mut payload, txid);
        put_u8(&mut payload, commit as u8);
        let receipt = self.append(payload);
        receipt.merge(self.sync())
    }

    fn encode_delta(tid: Tid, key: Key, ops: &[Op]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(32 + ops.len() * 16);
        put_u8(&mut payload, REC_DELTA);
        put_u64(&mut payload, tid.raw());
        encode_key(&mut payload, key);
        put_u32(&mut payload, ops.len() as u32);
        for op in ops {
            encode_op(&mut payload, op);
        }
        payload
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // A partially filled group-commit batch must not be lost just because
        // the log owner forgot (or had no chance) to call `sync()` before
        // dropping the log: flush and fsync whatever is buffered. Crash
        // injection still applies — `flush_locked` is a no-op once the
        // simulated machine has died, so crash tests keep their torn tails.
        let mut inner = self.inner.lock();
        let _ = self.flush_locked(&mut inner);
    }
}

impl CommitSink for Wal {
    fn log_commit(
        &self,
        tid: Tid,
        writes: &mut dyn ExactSizeIterator<Item = (Key, &Op)>,
    ) -> LogReceipt {
        if writes.len() == 0 {
            // Read-only transactions leave no trace: replaying an empty
            // write set is a no-op, so the record would be pure overhead.
            return LogReceipt::default();
        }
        self.append(Self::encode_commit(tid, writes))
    }

    fn log_merged_delta(&self, tid: Tid, key: Key, ops: &[Op]) -> LogReceipt {
        if ops.is_empty() {
            return LogReceipt::default();
        }
        self.append(Self::encode_delta(tid, key, ops))
    }

    fn sync(&self) -> LogReceipt {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempWalDir;
    use doppel_common::{CommitSinkExt, Value};

    fn tid(n: u64) -> Tid {
        Tid::from_parts(n, 0)
    }

    #[test]
    fn synchronous_appends_are_immediately_durable() {
        let dir = TempWalDir::new("sync-append");
        let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
        let r = wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Add(5))]);
        assert_eq!(r.records, 1);
        assert_eq!(r.fsyncs, 1);
        assert_eq!(r.batches, 1);
        assert_eq!(wal.durable_lsn(), wal.end_lsn());
        assert!(wal.durable_lsn() > LOG_MAGIC.len() as u64);
    }

    #[test]
    fn group_commit_batches_multiple_records_per_fsync() {
        let dir = TempWalDir::new("group-commit");
        let cfg = DurabilityConfig {
            group_commit_batch: 4,
            group_commit_interval: std::time::Duration::from_secs(3600),
            crash_at_byte: None,
        };
        let wal = Wal::open(dir.path(), cfg).unwrap();
        let mut receipts = LogReceipt::default();
        for i in 0..4 {
            receipts = receipts.merge(wal.log_commit_slice(tid(i), &[(Key::raw(i), Op::Add(1))]));
        }
        assert_eq!(receipts.records, 4);
        assert_eq!(receipts.fsyncs, 1, "one fsync covered the whole batch");
        assert_eq!(receipts.batches, 1);
        assert_eq!(wal.durable_lsn(), wal.end_lsn());

        // A fifth record stays buffered until sync().
        let r = wal.log_commit_slice(tid(9), &[(Key::raw(9), Op::Add(1))]);
        assert_eq!(r.fsyncs, 0);
        assert!(wal.durable_lsn() < wal.end_lsn());
        let s = wal.sync();
        assert_eq!(s.fsyncs, 1);
        assert_eq!(wal.durable_lsn(), wal.end_lsn());
    }

    #[test]
    fn drop_flushes_partially_filled_batch() {
        // Regression test for records buffered at shutdown: a group-commit
        // batch below the flush threshold must still reach the disk when the
        // log is dropped (engine drop / process exit without an explicit
        // `sync()`), and recovery must replay it.
        let dir = TempWalDir::new("drop-flush");
        let cfg = DurabilityConfig {
            group_commit_batch: 100,
            group_commit_interval: std::time::Duration::from_secs(3600),
            crash_at_byte: None,
        };
        {
            let wal = Wal::open(dir.path(), cfg).unwrap();
            for i in 0..3 {
                let r = wal.log_commit_slice(tid(i), &[(Key::raw(i), Op::Add(i as i64 + 1))]);
                assert_eq!(r.fsyncs, 0, "batch of 100 must not flush after {i} records");
            }
            assert!(wal.durable_lsn() < wal.end_lsn(), "records are buffered, not durable");
            // Dropped here without sync(): the Drop impl flushes the batch.
        }
        let recovered = crate::recover::recover(dir.path()).unwrap();
        assert_eq!(recovered.records.len(), 3, "all buffered records survived the drop");
        let ops: Vec<_> = recovered.records.iter().flat_map(|r| r.replay_ops()).collect();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[2], (Key::raw(2), Op::Add(3)));
    }

    #[test]
    fn drop_after_injected_crash_stays_dead() {
        // Drop must not resurrect a crashed log: the torn tail stays torn.
        let dir = TempWalDir::new("drop-after-crash");
        let crash_at = LOG_MAGIC.len() as u64 + 10;
        let cfg =
            DurabilityConfig { crash_at_byte: Some(crash_at), ..DurabilityConfig::synchronous() };
        {
            let wal = Wal::open(dir.path(), cfg).unwrap();
            wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Put(Value::from("payload bytes")))]);
            assert!(wal.is_crashed());
        }
        assert_eq!(
            std::fs::read(dir.path().join(LOG_FILE)).unwrap().len() as u64,
            crash_at,
            "drop after a crash must not write the lost tail"
        );
    }

    #[test]
    fn empty_write_sets_are_not_logged() {
        let dir = TempWalDir::new("empty-ws");
        let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
        assert_eq!(wal.log_commit_slice(tid(1), &[]), LogReceipt::default());
        assert_eq!(wal.log_merged_delta(tid(1), Key::raw(1), &[]), LogReceipt::default());
        assert_eq!(wal.end_lsn(), LOG_MAGIC.len() as u64);
    }

    #[test]
    fn crash_injection_tears_the_log_at_the_requested_byte() {
        let dir = TempWalDir::new("crash-at");
        let crash_at = LOG_MAGIC.len() as u64 + 20;
        let cfg = DurabilityConfig { crash_at_byte: Some(crash_at), ..DurabilityConfig::synchronous() };
        let wal = Wal::open(dir.path(), cfg).unwrap();
        // One record is bigger than 20 bytes, so the first flush dies.
        wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Put(Value::from("some payload")))]);
        assert!(wal.is_crashed());
        let on_disk = std::fs::read(dir.path().join(LOG_FILE)).unwrap();
        assert_eq!(on_disk.len() as u64, crash_at);
        // Everything after the crash is silently dropped.
        assert_eq!(wal.log_commit_slice(tid(2), &[(Key::raw(2), Op::Add(1))]), LogReceipt::default());
        assert_eq!(wal.sync(), LogReceipt::default());
        assert_eq!(std::fs::read(dir.path().join(LOG_FILE)).unwrap().len() as u64, crash_at);
    }

    #[test]
    fn reopen_truncates_torn_tail_and_appends() {
        let dir = TempWalDir::new("reopen");
        {
            let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
            wal.log_commit_slice(tid(1), &[(Key::raw(1), Op::Add(5))]);
        }
        // Tear the file by hand: append garbage.
        let path = dir.path().join(LOG_FILE);
        let valid_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        drop(f);

        let wal = Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap();
        assert_eq!(wal.durable_lsn(), valid_len, "torn tail trimmed on reopen");
        wal.log_commit_slice(tid(2), &[(Key::raw(2), Op::Add(1))]);
        assert!(wal.durable_lsn() > valid_len);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let dir = TempWalDir::new("bad-magic");
        std::fs::create_dir_all(dir.path()).unwrap();
        std::fs::write(dir.path().join(LOG_FILE), b"NOTAWAL0rest").unwrap();
        assert!(matches!(
            Wal::open(dir.path(), DurabilityConfig::default()),
            Err(WalError::Corrupt(_))
        ));
    }
}
