//! CRC-32 (IEEE 802.3 polynomial), the checksum guarding every log record
//! and checkpoint body.
//!
//! Recovery classifies a record whose stored CRC does not match the recomputed
//! one as *torn* (the machine died mid-write) and truncates the log there, so
//! the checksum is the crash-consistency linchpin of the whole subsystem.

/// Reflected polynomial of CRC-32/IEEE (the zlib / Ethernet CRC).
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let a = crc32(b"phase reconciliation");
        let mut flipped = b"phase reconciliation".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }
}
