//! Self-cleaning temporary WAL directories.
//!
//! Used by this crate's tests, the workspace crash-recovery suites, the
//! `recovery` experiment binary and the `durable_counter` example. Paths are
//! unique per *use site* — process id alone is not enough, because `cargo
//! test` runs many test binaries (and threads) concurrently and colliding
//! directories would make crash-recovery assertions flaky.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed on drop.
pub struct TempWalDir {
    path: PathBuf,
}

impl TempWalDir {
    /// Creates a unique directory path tagged with `name`. The directory
    /// itself is created lazily by [`crate::Wal::open`] (or by the caller);
    /// drop removes whatever exists.
    pub fn new(name: &str) -> Self {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "doppel-wal-{name}-{}-{id}",
            std::process::id()
        ));
        // A stale directory from a killed previous run must not leak state
        // into this one.
        let _ = std::fs::remove_dir_all(&path);
        TempWalDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempWalDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_unique_and_cleaned_up() {
        let a = TempWalDir::new("unique");
        let b = TempWalDir::new("unique");
        assert_ne!(a.path(), b.path());
        std::fs::create_dir_all(a.path()).unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "drop removes the directory");
    }
}
