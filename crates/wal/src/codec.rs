//! Binary serialization of keys, operations and values.
//!
//! The log stores *logical* write records — `(Key, Op)` pairs — so that every
//! operation registered in the [`doppel_common::split_ops`] registry (Add,
//! Max, Min, Mult, OPut, TopKInsert, BitOr, BoundedAdd, SetUnion) can be
//! replayed through its own [`doppel_common::Op::apply_to`] semantics at
//! recovery. Checkpoints store *physical* `(Key, Value)` pairs.
//!
//! The encoding is a fixed little-endian format, not serde: the log must be
//! byte-stable across runs (CRCs are computed over these bytes) and torn
//! records must be detectable by length alone.

use bytes::Bytes;
use doppel_common::{ArgValue, Args, IntSet, Key, Op, OrderKey, Table, TopKSet, Value};
use std::fmt;

/// Decoding error: corrupt or truncated bytes.
///
/// During recovery a `CodecError` in the *last* record of the log is a torn
/// write (expected after a crash); anywhere else it is corruption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------- primitives

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub fn put_slice(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

fn put_i64s(buf: &mut Vec<u8>, len: usize, it: impl Iterator<Item = i64>) {
    put_u32(buf, len as u32);
    for v in it {
        put_i64(buf, v);
    }
}

/// A cursor over encoded bytes.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes left to decode (used for corrupt-length sanity caps).
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError("unexpected end of record"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn bytes(&mut self) -> Result<Bytes> {
        let len = self.u32()? as usize;
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    fn i64s(&mut self) -> Result<Vec<i64>> {
        let len = self.u32()? as usize;
        // Cheap sanity bound so a corrupt length cannot trigger a huge
        // allocation before the CRC check would have caught it.
        if len > self.buf.len() - self.pos {
            return Err(CodecError("integer sequence longer than record"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.i64()?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------- keys

pub fn encode_key(buf: &mut Vec<u8>, k: Key) {
    put_u32(buf, k.table() as u32);
    put_u64(buf, k.id());
    put_u32(buf, k.sub());
}

fn table_from_u32(tag: u32) -> Result<Table> {
    Table::ALL
        .iter()
        .copied()
        .find(|t| *t as u32 == tag)
        .ok_or(CodecError("unknown table tag"))
}

pub fn decode_key(d: &mut Dec<'_>) -> Result<Key> {
    let table = table_from_u32(d.u32()?)?;
    let id = d.u64()?;
    let sub = d.u32()?;
    Ok(Key::new(table, id, sub))
}

// -------------------------------------------------------------------- values

const VAL_INT: u8 = 0;
const VAL_BYTES: u8 = 1;
const VAL_TUPLE: u8 = 2;
const VAL_TOPK: u8 = 3;
const VAL_SET: u8 = 4;

fn encode_order_key(buf: &mut Vec<u8>, o: &OrderKey) {
    put_i64s(buf, o.components().len(), o.components().iter().copied());
}

fn decode_order_key(d: &mut Dec<'_>) -> Result<OrderKey> {
    OrderKey::new(d.i64s()?).map_err(|_| CodecError("empty order key"))
}

fn encode_tuple(buf: &mut Vec<u8>, order: &OrderKey, core: usize, payload: &Bytes) {
    encode_order_key(buf, order);
    put_u64(buf, core as u64);
    put_slice(buf, payload.as_ref());
}

fn decode_tuple(d: &mut Dec<'_>) -> Result<(OrderKey, usize, Bytes)> {
    let order = decode_order_key(d)?;
    let core = d.u64()? as usize;
    let payload = d.bytes()?;
    Ok((order, core, payload))
}

/// Encodes a value (checkpoint entries, `Put` arguments).
pub fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(n) => {
            put_u8(buf, VAL_INT);
            put_i64(buf, *n);
        }
        Value::Bytes(b) => {
            put_u8(buf, VAL_BYTES);
            put_slice(buf, b.as_ref());
        }
        Value::Tuple(t) => {
            put_u8(buf, VAL_TUPLE);
            encode_tuple(buf, &t.order, t.core, &t.payload);
        }
        Value::TopK(t) => {
            put_u8(buf, VAL_TOPK);
            put_u64(buf, t.capacity() as u64);
            put_u32(buf, t.len() as u32);
            for e in t.iter() {
                encode_tuple(buf, &e.order, e.core, &e.payload);
            }
        }
        Value::Set(s) => {
            put_u8(buf, VAL_SET);
            put_i64s(buf, s.len(), s.iter());
        }
    }
}

/// Decodes a value.
pub fn decode_value(d: &mut Dec<'_>) -> Result<Value> {
    match d.u8()? {
        VAL_INT => Ok(Value::Int(d.i64()?)),
        VAL_BYTES => Ok(Value::Bytes(d.bytes()?)),
        VAL_TUPLE => {
            let (order, core, payload) = decode_tuple(d)?;
            Ok(Value::Tuple(doppel_common::OrderedTuple::new(order, core, payload)))
        }
        VAL_TOPK => {
            let k = d.u64()? as usize;
            let n = d.u32()?;
            let mut set = TopKSet::new(k);
            for _ in 0..n {
                let (order, core, payload) = decode_tuple(d)?;
                set.insert(order, core, payload);
            }
            Ok(Value::TopK(set))
        }
        VAL_SET => Ok(Value::Set(d.i64s()?.into_iter().collect::<IntSet>())),
        _ => Err(CodecError("unknown value tag")),
    }
}

// ---------------------------------------------------------------- operations

const OP_PUT: u8 = 0;
const OP_MAX: u8 = 1;
const OP_MIN: u8 = 2;
const OP_ADD: u8 = 3;
const OP_MULT: u8 = 4;
const OP_OPUT: u8 = 5;
const OP_TOPK: u8 = 6;
const OP_BITOR: u8 = 7;
const OP_BOUNDED_ADD: u8 = 8;
const OP_SET_UNION: u8 = 9;

/// Encodes an operation. Every registered splittable operation plus `Put` is
/// covered; an operation kind added tomorrow fails to compile here, which is
/// exactly the reminder to extend the log format.
pub fn encode_op(buf: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Put(v) => {
            put_u8(buf, OP_PUT);
            encode_value(buf, v);
        }
        Op::Max(n) => {
            put_u8(buf, OP_MAX);
            put_i64(buf, *n);
        }
        Op::Min(n) => {
            put_u8(buf, OP_MIN);
            put_i64(buf, *n);
        }
        Op::Add(n) => {
            put_u8(buf, OP_ADD);
            put_i64(buf, *n);
        }
        Op::Mult(n) => {
            put_u8(buf, OP_MULT);
            put_i64(buf, *n);
        }
        Op::OPut { order, core, payload } => {
            put_u8(buf, OP_OPUT);
            encode_tuple(buf, order, *core, payload);
        }
        Op::TopKInsert { order, core, payload, k } => {
            put_u8(buf, OP_TOPK);
            put_u64(buf, *k as u64);
            encode_tuple(buf, order, *core, payload);
        }
        Op::BitOr(n) => {
            put_u8(buf, OP_BITOR);
            put_i64(buf, *n);
        }
        Op::BoundedAdd { n, bound } => {
            put_u8(buf, OP_BOUNDED_ADD);
            put_i64(buf, *n);
            put_i64(buf, *bound);
        }
        Op::SetUnion(s) => {
            put_u8(buf, OP_SET_UNION);
            put_i64s(buf, s.len(), s.iter());
        }
    }
}

/// Decodes an operation.
pub fn decode_op(d: &mut Dec<'_>) -> Result<Op> {
    match d.u8()? {
        OP_PUT => Ok(Op::Put(decode_value(d)?)),
        OP_MAX => Ok(Op::Max(d.i64()?)),
        OP_MIN => Ok(Op::Min(d.i64()?)),
        OP_ADD => Ok(Op::Add(d.i64()?)),
        OP_MULT => Ok(Op::Mult(d.i64()?)),
        OP_OPUT => {
            let (order, core, payload) = decode_tuple(d)?;
            Ok(Op::OPut { order, core, payload })
        }
        OP_TOPK => {
            let k = d.u64()? as usize;
            let (order, core, payload) = decode_tuple(d)?;
            Ok(Op::TopKInsert { order, core, payload, k })
        }
        OP_BITOR => Ok(Op::BitOr(d.i64()?)),
        OP_BOUNDED_ADD => {
            let n = d.i64()?;
            let bound = d.i64()?;
            Ok(Op::BoundedAdd { n, bound })
        }
        OP_SET_UNION => Ok(Op::SetUnion(d.i64s()?.into_iter().collect::<IntSet>())),
        _ => Err(CodecError("unknown op tag")),
    }
}

// --------------------------------------------------- procedure args/results

const ARG_INT: u8 = 0;
const ARG_KEY: u8 = 1;
const ARG_VALUE: u8 = 2;
const ARG_BYTES: u8 = 3;
const ARG_STR: u8 = 4;

/// Encodes one element of an argument / result vector.
pub fn encode_arg(buf: &mut Vec<u8>, a: &ArgValue) {
    match a {
        ArgValue::Int(n) => {
            put_u8(buf, ARG_INT);
            put_i64(buf, *n);
        }
        ArgValue::Key(k) => {
            put_u8(buf, ARG_KEY);
            encode_key(buf, *k);
        }
        ArgValue::Value(v) => {
            put_u8(buf, ARG_VALUE);
            encode_value(buf, v);
        }
        ArgValue::Bytes(b) => {
            put_u8(buf, ARG_BYTES);
            put_slice(buf, b.as_ref());
        }
        ArgValue::Str(s) => {
            put_u8(buf, ARG_STR);
            put_slice(buf, s.as_bytes());
        }
    }
}

/// Decodes one element of an argument / result vector.
pub fn decode_arg(d: &mut Dec<'_>) -> Result<ArgValue> {
    match d.u8()? {
        ARG_INT => Ok(ArgValue::Int(d.i64()?)),
        ARG_KEY => Ok(ArgValue::Key(decode_key(d)?)),
        ARG_VALUE => Ok(ArgValue::Value(decode_value(d)?)),
        ARG_BYTES => Ok(ArgValue::Bytes(d.bytes()?)),
        ARG_STR => {
            let b = d.bytes()?;
            String::from_utf8(b.to_vec())
                .map(ArgValue::Str)
                .map_err(|_| CodecError("argument string is not utf-8"))
        }
        _ => Err(CodecError("unknown argument tag")),
    }
}

/// Encodes a self-describing procedure argument / result vector
/// ([`doppel_common::Args`] / [`doppel_common::ProcResult`]).
pub fn encode_args(buf: &mut Vec<u8>, args: &Args) {
    put_u32(buf, args.len() as u32);
    for a in args.iter() {
        encode_arg(buf, a);
    }
}

/// Decodes a procedure argument / result vector.
pub fn decode_args(d: &mut Dec<'_>) -> Result<Args> {
    let n = d.u32()? as usize;
    // The smallest element (an empty Bytes/Str) encodes to 5 bytes, so a
    // count the buffer cannot possibly hold is corrupt. Unlike the WAL
    // paths there is no CRC upstream of a wire `InvokeProc`, so this cap is
    // what keeps a hostile count header from reserving gigabytes before the
    // first element fails to decode.
    if n > d.remaining() / 5 {
        return Err(CodecError("argument count longer than record"));
    }
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(decode_arg(d)?);
    }
    Ok(Args::from_vec(vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use doppel_common::{OpKind, OrderedTuple};

    fn roundtrip_op(op: &Op) -> Op {
        let mut buf = Vec::new();
        encode_op(&mut buf, op);
        let mut d = Dec::new(&buf);
        let back = decode_op(&mut d).unwrap();
        assert!(d.is_done(), "{op:?} left trailing bytes");
        back
    }

    fn roundtrip_value(v: &Value) -> Value {
        let mut buf = Vec::new();
        encode_value(&mut buf, v);
        let mut d = Dec::new(&buf);
        let back = decode_value(&mut d).unwrap();
        assert!(d.is_done());
        back
    }

    /// One concrete op per registered splittable kind (plus Put), so the
    /// roundtrip test enumerates the registry rather than a hand-kept list.
    fn op_for_kind(kind: OpKind) -> Op {
        match kind {
            OpKind::Max => Op::Max(-3),
            OpKind::Min => Op::Min(12),
            OpKind::Add => Op::Add(7),
            OpKind::Mult => Op::Mult(2),
            OpKind::BitOr => Op::BitOr(0b1010),
            OpKind::BoundedAdd => Op::BoundedAdd { n: 4, bound: 100 },
            OpKind::SetUnion => Op::SetUnion([5, -2, 9].into_iter().collect()),
            OpKind::OPut => Op::OPut {
                order: OrderKey::pair(10, 3),
                core: 2,
                payload: Bytes::copy_from_slice(b"payload"),
            },
            OpKind::TopKInsert => Op::TopKInsert {
                order: OrderKey::from(8),
                core: 1,
                payload: Bytes::copy_from_slice(b"t"),
                k: 5,
            },
            other => panic!("{other} has no splittable encoding"),
        }
    }

    #[test]
    fn every_registered_split_op_roundtrips() {
        for kind in OpKind::ALL.iter().filter(|k| k.splittable()) {
            let op = op_for_kind(*kind);
            assert_eq!(roundtrip_op(&op), op, "{kind} must roundtrip");
        }
        let put = Op::Put(Value::from("row"));
        assert_eq!(roundtrip_op(&put), put);
    }

    #[test]
    fn values_roundtrip() {
        let mut topk = TopKSet::new(3);
        topk.insert(OrderKey::pair(5, 1), 0, b"a".as_ref());
        topk.insert(OrderKey::pair(9, 0), 2, b"b".as_ref());
        let values = vec![
            Value::Int(-99),
            Value::from("bytes-value"),
            Value::Tuple(OrderedTuple::new(OrderKey::from(4), 3, b"p".as_ref())),
            Value::TopK(topk),
            Value::Set([1, 2, 3].into_iter().collect()),
        ];
        for v in values {
            assert_eq!(roundtrip_value(&v), v);
        }
    }

    #[test]
    fn keys_roundtrip_across_tables() {
        for table in Table::ALL {
            let k = Key::new(*table, 0xDEAD_BEEF, 7);
            let mut buf = Vec::new();
            encode_key(&mut buf, k);
            let mut d = Dec::new(&buf);
            assert_eq!(decode_key(&mut d).unwrap(), k);
        }
    }

    #[test]
    fn truncated_bytes_error_instead_of_panicking() {
        let mut buf = Vec::new();
        encode_op(&mut buf, &Op::SetUnion([1, 2, 3].into_iter().collect()));
        for cut in 0..buf.len() {
            let mut d = Dec::new(&buf[..cut]);
            assert!(decode_op(&mut d).is_err(), "prefix of length {cut} must fail");
        }
    }

    #[test]
    fn unknown_tags_are_errors() {
        let mut d = Dec::new(&[0xFF]);
        assert_eq!(decode_op(&mut d), Err(CodecError("unknown op tag")));
        let mut d = Dec::new(&[0xFF]);
        assert_eq!(decode_value(&mut d), Err(CodecError("unknown value tag")));
        let mut d = Dec::new(&[0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(decode_key(&mut d).is_err());
    }

    #[test]
    fn args_roundtrip_every_element_kind() {
        let args = Args::new()
            .int(-77)
            .key(Key::new(Table::RubisMaxBid, 9, 1))
            .value(Value::Set([3, 5].into_iter().collect()))
            .bytes(b"blob".as_ref())
            .str("rubis.store_bid");
        let mut buf = Vec::new();
        encode_args(&mut buf, &args);
        let mut d = Dec::new(&buf);
        assert_eq!(decode_args(&mut d).unwrap(), args);
        assert!(d.is_done());

        let empty = Args::new();
        let mut buf = Vec::new();
        encode_args(&mut buf, &empty);
        assert_eq!(decode_args(&mut Dec::new(&buf)).unwrap(), empty);
    }

    #[test]
    fn truncated_args_error_instead_of_panicking() {
        let args = Args::new().str("name").int(4).bytes(b"xy".as_ref());
        let mut buf = Vec::new();
        encode_args(&mut buf, &args);
        for cut in 0..buf.len() {
            let mut d = Dec::new(&buf[..cut]);
            assert!(decode_args(&mut d).is_err(), "prefix of length {cut} must fail");
        }
        // Corrupt count and bad utf-8 are typed errors.
        let mut d = Dec::new(&[0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(decode_args(&mut d).is_err());
        let bad_utf8 = [1, 0, 0, 0, ARG_STR, 2, 0, 0, 0, 0xFF, 0xFE];
        assert!(decode_args(&mut Dec::new(&bad_utf8)).is_err());
    }

    #[test]
    fn empty_order_key_is_rejected() {
        // count = 0 components.
        let buf = [OP_OPUT, 0, 0, 0, 0];
        let mut d = Dec::new(&buf);
        assert!(decode_op(&mut d).is_err());
    }
}
