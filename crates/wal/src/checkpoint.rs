//! Checkpoints: a consistent snapshot of the store plus the log offset it
//! covers, so recovery replays only the log tail.
//!
//! File layout (one file per checkpoint, `checkpoint-<seq>.ckpt`):
//!
//! ```text
//! [magic "DPLCKP01"] [body_len: u64 LE] [crc32(body): u32 LE] [body]
//! body = [seq: u64] [log_offset: u64] [count: u64] [count × (key, value)]
//! ```
//!
//! Checkpoints are written to a temporary file and renamed into place, so a
//! crash mid-checkpoint leaves either the previous checkpoint or a garbage
//! temp file — never a half-valid `.ckpt`. Recovery additionally validates
//! the CRC and falls back to the next-newest checkpoint when the newest one
//! is unreadable.

use crate::codec::{decode_key, decode_value, encode_key, encode_value, put_u64, Dec};
use crate::crc::crc32;
use crate::log::WalError;
use doppel_common::{Engine, Key, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const CKPT_MAGIC: &[u8; 8] = b"DPLCKP01";

/// A loaded checkpoint.
pub struct Checkpoint {
    /// Monotonic checkpoint sequence number (newest wins).
    pub seq: u64,
    /// Log offset at the moment the checkpoint was taken: recovery replays
    /// records from here on.
    pub log_offset: u64,
    /// The snapshotted records.
    pub records: Vec<(Key, Value)>,
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq}.ckpt"))
}

/// Lists `(seq, path)` of every checkpoint file in `dir`, newest first.
fn list(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut found = Vec::new();
    if !dir.exists() {
        return Ok(found);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            found.push((seq, entry.path()));
        }
    }
    found.sort_by_key(|(seq, _)| std::cmp::Reverse(*seq));
    Ok(found)
}

/// Writes checkpoint `seq` covering the log up to `log_offset`.
///
/// Prunes checkpoints older than the previous one (at most two are kept: the
/// new one, and one fallback in case the new file is later found corrupt).
pub fn write(
    dir: &Path,
    seq: u64,
    log_offset: u64,
    records: &[(Key, Value)],
) -> Result<PathBuf, WalError> {
    let mut body = Vec::with_capacity(24 + records.len() * 32);
    put_u64(&mut body, seq);
    put_u64(&mut body, log_offset);
    put_u64(&mut body, records.len() as u64);
    for (k, v) in records {
        encode_key(&mut body, *k);
        encode_value(&mut body, v);
    }

    let tmp = dir.join(format!("checkpoint-{seq}.ckpt.tmp"));
    let path = checkpoint_path(dir, seq);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(CKPT_MAGIC)?;
        f.write_all(&(body.len() as u64).to_le_bytes())?;
        f.write_all(&crc32(&body).to_le_bytes())?;
        f.write_all(&body)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, &path)?;

    // Prune everything older than the immediate predecessor.
    for (old_seq, old_path) in list(dir)?.into_iter().skip(2) {
        debug_assert!(old_seq < seq);
        let _ = std::fs::remove_file(old_path);
    }
    Ok(path)
}

fn load_file(path: &Path) -> Result<Checkpoint, WalError> {
    let mut bytes = Vec::new();
    OpenOptions::new().read(true).open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 20 || &bytes[..8] != CKPT_MAGIC {
        return Err(WalError::Corrupt("checkpoint magic"));
    }
    let body_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if bytes.len() - 20 < body_len {
        return Err(WalError::Corrupt("checkpoint truncated"));
    }
    let body = &bytes[20..20 + body_len];
    if crc32(body) != crc {
        return Err(WalError::Corrupt("checkpoint crc mismatch"));
    }
    let mut d = Dec::new(body);
    let seq = d.u64().map_err(|_| WalError::Corrupt("checkpoint seq"))?;
    let log_offset = d.u64().map_err(|_| WalError::Corrupt("checkpoint offset"))?;
    let count = d.u64().map_err(|_| WalError::Corrupt("checkpoint count"))?;
    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let k = decode_key(&mut d).map_err(|_| WalError::Corrupt("checkpoint key"))?;
        let v = decode_value(&mut d).map_err(|_| WalError::Corrupt("checkpoint value"))?;
        records.push((k, v));
    }
    Ok(Checkpoint { seq, log_offset, records })
}

/// Loads the newest checkpoint that validates; a corrupt newest checkpoint
/// (crash during `write`'s rename window, disk rot) falls back to the next.
pub fn load_newest(dir: &Path) -> Result<Option<Checkpoint>, WalError> {
    for (_, path) in list(dir)? {
        if let Ok(ckpt) = load_file(&path) {
            return Ok(Some(ckpt));
        }
    }
    Ok(None)
}

/// The next unused checkpoint sequence number in `dir`.
pub fn next_seq(dir: &Path) -> Result<u64, WalError> {
    Ok(list(dir)?.first().map(|(seq, _)| seq + 1).unwrap_or(1))
}

/// Takes a checkpoint of a quiescent engine through
/// [`Engine::for_each_record`] (which every store-backed engine implements
/// via `Store::for_each`), covering the log up to `log_offset`.
pub fn checkpoint_engine(
    dir: &Path,
    engine: &dyn Engine,
    log_offset: u64,
) -> Result<u64, WalError> {
    let mut records = Vec::new();
    engine.for_each_record(&mut |k, v| records.push((k, v.clone())));
    let seq = next_seq(dir)?;
    write(dir, seq, log_offset, &records)?;
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempWalDir;

    fn entries(n: u64) -> Vec<(Key, Value)> {
        (0..n).map(|i| (Key::raw(i), Value::Int(i as i64 * 10))).collect()
    }

    #[test]
    fn write_and_load_roundtrip() {
        let dir = TempWalDir::new("ckpt-roundtrip");
        std::fs::create_dir_all(dir.path()).unwrap();
        write(dir.path(), 1, 99, &entries(50)).unwrap();
        let c = load_newest(dir.path()).unwrap().unwrap();
        assert_eq!(c.seq, 1);
        assert_eq!(c.log_offset, 99);
        assert_eq!(c.records.len(), 50);
        assert_eq!(c.records.iter().find(|(k, _)| *k == Key::raw(7)).unwrap().1, Value::Int(70));
    }

    #[test]
    fn newest_valid_checkpoint_wins_and_corrupt_falls_back() {
        let dir = TempWalDir::new("ckpt-newest");
        std::fs::create_dir_all(dir.path()).unwrap();
        write(dir.path(), 1, 10, &entries(1)).unwrap();
        write(dir.path(), 2, 20, &entries(2)).unwrap();
        assert_eq!(load_newest(dir.path()).unwrap().unwrap().seq, 2);
        assert_eq!(next_seq(dir.path()).unwrap(), 3);

        // Corrupt the newest: recovery falls back to seq 1.
        let p2 = checkpoint_path(dir.path(), 2);
        let mut bytes = std::fs::read(&p2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p2, &bytes).unwrap();
        let c = load_newest(dir.path()).unwrap().unwrap();
        assert_eq!(c.seq, 1);
        assert_eq!(c.log_offset, 10);
    }

    #[test]
    fn pruning_keeps_two_checkpoints() {
        let dir = TempWalDir::new("ckpt-prune");
        std::fs::create_dir_all(dir.path()).unwrap();
        for seq in 1..=5 {
            write(dir.path(), seq, seq * 7, &entries(seq)).unwrap();
        }
        let remaining = list(dir.path()).unwrap();
        assert_eq!(remaining.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![5, 4]);
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = TempWalDir::new("ckpt-empty");
        assert!(load_newest(dir.path()).unwrap().is_none());
        assert_eq!(next_seq(dir.path()).unwrap(), 1);
    }
}
