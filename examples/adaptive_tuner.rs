//! Adaptive tuner: watch the contention controller migrate split labels as
//! the hot set moves — with zero manual hints.
//!
//! The flow:
//!
//! 1. connect to a Doppel server running with `--adaptive` — the address in
//!    `DOPPEL_SERVER_ADDR` if set, otherwise an in-process
//!    [`doppel_service::Server`] on an ephemeral localhost port;
//! 2. hammer a first hot set of keys with splittable increments from two
//!    client connections (conflicts need concurrent execution, and each
//!    connection feeds one submission queue) until the tuner's wire status
//!    (`GetStats`) shows the keys in the split set — no `label_split` call
//!    is ever made;
//! 3. rotate: abandon the first hot set and hammer a second one, and wait
//!    for the split set to migrate — the new keys promoted, the stale ones
//!    dropped, all recorded in the tuner's decision history.
//!
//! Run with: `cargo run --release --example adaptive_tuner`
//! Or against a live server started with knobs scaled for the host, e.g.:
//! `doppel-server --adaptive --tuner-epoch-ms 300 --promote-hits 2`
//! `DOPPEL_SERVER_ADDR=127.0.0.1:7777 cargo run --release --example adaptive_tuner`

use doppel_common::{Key, TunerConfig};
use doppel_service::{RemoteClient, RemoteTxn, Server, ServerEngine, ServiceConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const FIRST: [u64; 2] = [100, 101];
const SECOND: [u64; 2] = [9000, 9001];

/// Load generator: pipelined bursts of increments over the hot set the
/// `phase` flag currently selects (0 = FIRST, 1 = SECOND, anything else =
/// stop). Two of these run concurrently so increments to the same key
/// overlap and conflict — the signal the tuner promotes from.
fn hammer(addr: String, phase: Arc<AtomicUsize>) {
    let mut client = RemoteClient::connect(&*addr).expect("connect load generator");
    loop {
        let keys = match phase.load(Ordering::Relaxed) {
            0 => FIRST,
            1 => SECOND,
            _ => return,
        };
        let mut ids = Vec::new();
        for i in 0..64 {
            let key = Key::raw(keys[i % keys.len()]);
            ids.push(client.submit(&RemoteTxn::new().add(key, 1)).expect("submit increment"));
        }
        for id in ids {
            // Aborted retries are fine — every conflict feeds the heat
            // sketch either way.
            let _ = client.wait(id).expect("increment completes");
        }
    }
}

/// Polls the server until `pred` holds for the tuner's wire status, or the
/// deadline passes.
fn poll_until(
    client: &mut RemoteClient,
    deadline: Instant,
    mut pred: impl FnMut(&doppel_service::TunerSnapshot) -> bool,
) -> Option<doppel_service::TunerSnapshot> {
    let mut last_report = Instant::now();
    loop {
        let snap = client.stats().expect("GetStats");
        if let Some(t) = &snap.tuner {
            if pred(t) {
                return Some(t.clone());
            }
        }
        if last_report.elapsed() > Duration::from_secs(5) {
            last_report = Instant::now();
            println!(
                "  ... commits={} conflicts={} split_keys={:?} epochs={}",
                snap.scalar("commits").unwrap_or(0),
                snap.scalar("conflicts").unwrap_or(0),
                snap.tuner.as_ref().map(|t| t.split_keys.clone()).unwrap_or_default(),
                snap.tuner.as_ref().map(|t| t.epochs).unwrap_or(0),
            );
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

fn main() {
    let external = std::env::var("DOPPEL_SERVER_ADDR").ok();
    let local_server = if external.is_none() {
        // Knobs scaled for a small host: long epochs accumulate enough
        // conflict heat per decision even at modest conflict rates.
        let tuner = TunerConfig {
            epoch: Duration::from_millis(250),
            promote_min_hits: 2,
            demote_idle_epochs: 2,
            ..TunerConfig::default()
        };
        let engine = ServerEngine::build_with_tuner("doppel", 2, 10, 256, tuner)
            .expect("doppel engine")
            .with_adaptive(true);
        Some(Server::start(engine, ServiceConfig::default(), "127.0.0.1:0").expect("bind"))
    } else {
        None
    };
    let addr = external
        .clone()
        .unwrap_or_else(|| local_server.as_ref().unwrap().local_addr().to_string());
    println!("connecting to {addr}");
    let mut client = RemoteClient::connect(&*addr).expect("connect to doppel-server");
    client.ping().expect("server answers ping");

    // Against an external server we only *require* adaptive behaviour when
    // the caller vouches for the flag (CI sets this after starting
    // `doppel-server --adaptive`).
    let must_adapt = external.is_none()
        || std::env::var("DOPPEL_EXPECT_ADAPTIVE").as_deref() == Ok("1");
    let snap = client.stats().expect("GetStats");
    match &snap.tuner {
        Some(t) => println!("tuner live: {} epoch(s) completed so far", t.epochs),
        None if must_adapt => panic!("server is not running the adaptive tuner"),
        None => {
            println!("server has no tuner (started with --no-adaptive?); nothing to watch");
            return;
        }
    }

    // `Key::raw(n)` has heat token `n`, so wire split keys match ids 1:1.
    let in_first = |t: &doppel_service::TunerSnapshot| {
        t.split_keys.iter().any(|k| FIRST.contains(k))
    };
    let in_second = |t: &doppel_service::TunerSnapshot| {
        t.split_keys.iter().any(|k| SECOND.contains(k))
    };

    let phase = Arc::new(AtomicUsize::new(0));
    let generators: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let phase = Arc::clone(&phase);
            std::thread::spawn(move || hammer(addr, phase))
        })
        .collect();

    println!("phase 1: hammering keys {FIRST:?}, waiting for promotion...");
    let deadline = Instant::now() + Duration::from_secs(30);
    let promoted = poll_until(&mut client, deadline, &in_first);
    match &promoted {
        Some(t) => {
            println!("  first hot set split after {} epoch(s); decisions:", t.epochs);
            for d in &t.decisions {
                println!("    {d}");
            }
        }
        None if must_adapt => panic!("tuner never promoted the first hot set"),
        None => println!("  no promotion observed (low conflict rate on this host?)"),
    }

    println!("phase 2: rotating to keys {SECOND:?}, waiting for the labels to migrate...");
    phase.store(1, Ordering::Relaxed);
    let deadline = Instant::now() + Duration::from_secs(30);
    let migrated = poll_until(&mut client, deadline, &in_second);
    match &migrated {
        Some(t) => {
            println!("  labels migrated: split set now {:?}; decisions:", t.split_keys);
            for d in &t.decisions {
                println!("    {d}");
            }
            assert!(!t.decisions.is_empty(), "a migration must leave a decision trail");
        }
        None if must_adapt && promoted.is_some() => {
            panic!("tuner never followed the hot set to the second key group")
        }
        None => println!("  no migration observed"),
    }

    // The old hot set sees no traffic now, so its labels go cold and are
    // demoted (tuner hysteresis) or unsplit (classifier write-fraction
    // rule) — either way they leave the split set.
    if migrated.is_some() && must_adapt {
        let deadline = Instant::now() + Duration::from_secs(30);
        match poll_until(&mut client, deadline, |t| !in_first(t)) {
            Some(t) => println!("  stale labels dropped; final split set {:?}", t.split_keys),
            None => panic!("stale split labels were never demoted"),
        }
    }

    phase.store(2, Ordering::Relaxed);
    for g in generators {
        let _ = g.join();
    }
    println!("adaptive tuner example finished");
}
