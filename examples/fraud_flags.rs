//! A fraud-detection pipeline built on the new splittable operations: rule
//! hits OR a flag bit into the account's bitmask (`BitOr`) and bump a
//! saturating strike counter (`BoundedAdd`), while risk checks read both.
//!
//! During a fraud wave a handful of compromised accounts receive most of the
//! traffic, so their flag and strike records become heavily contended — and
//! because both updates commute, Doppel splits them across cores instead of
//! serialising the writers.
//!
//! Run with: `cargo run --release -p doppel-repro --example fraud_flags`

use doppel_bench::engines::EngineParams;
use doppel_bench::{build_engine, EngineKind};
use doppel_workloads::driver::{BenchOptions, Driver};
use doppel_workloads::flags::{flags_key, strikes_key, FlagsWorkload};
use std::time::Duration;

fn main() {
    let workers = 4;
    let accounts = 20_000;
    // 90% flag-raises with heavily skewed account popularity: a fraud wave
    // concentrated on a few compromised accounts.
    let workload = FlagsWorkload::fraud_wave(accounts);
    let options = BenchOptions::new(workers, Duration::from_millis(600));

    println!(
        "FLAGS workload: {accounts} accounts, alpha=1.4, 90% flag-raises, {workers} workers\n"
    );
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>14} {:>14}",
        "engine", "txns/sec", "aborts", "stashed", "mean read", "mean write"
    );

    for kind in [EngineKind::Doppel, EngineKind::Occ, EngineKind::Twopl] {
        let params = EngineParams {
            workers,
            phase_len: Duration::from_millis(10),
            ..EngineParams::default()
        };
        let engine = build_engine(kind, &params);
        let result = Driver::run(engine.as_ref(), &workload, &options);
        println!(
            "{:<8} {:>12.0} {:>10} {:>10} {:>12.0}us {:>12.0}us",
            result.engine,
            result.throughput,
            result.aborts,
            result.stashed,
            result.read_latency.mean_us,
            result.write_latency.mean_us,
        );

        // Sanity: the hottest account's flags are a subset of the rule bits
        // and its strikes never exceed the cap.
        let flags = engine.global_get(flags_key(0)).unwrap().as_int().unwrap();
        let strikes = engine.global_get(strikes_key(0)).unwrap().as_int().unwrap();
        assert!(flags >= 0 && strikes <= 1_000_000);
        engine.shutdown();
    }

    println!(
        "\nFlag bits and strike counts commute, so Doppel applies them to per-core slices \
         during split phases and reconciles in O(cores) — risk checks of hot accounts wait \
         for the next joined phase instead."
    );
}
