//! The LIKE workload from the paper (§7): users "like" pages, the counters of
//! popular pages become contended, and Doppel splits them.
//!
//! This example runs the same LIKE workload on Doppel and on plain OCC
//! through the shared benchmark driver and prints a side-by-side comparison,
//! including the latency price Doppel pays on reads of split data (Table 3's
//! trade-off).
//!
//! Run with: `cargo run --release -p doppel-bench --example social_likes`

use doppel_bench::{build_engine, EngineKind};
use doppel_bench::engines::EngineParams;
use doppel_workloads::driver::{BenchOptions, Driver};
use doppel_workloads::like::LikeWorkload;
use std::time::Duration;

fn main() {
    let workers = 4;
    let users = 50_000;
    let pages = 50_000;
    // 50% reads / 50% writes with heavily skewed page popularity: the
    // counters of the top few pages receive most of the writes.
    let workload = LikeWorkload::skewed(users, pages);
    let options = BenchOptions::new(workers, Duration::from_secs(1));

    println!("LIKE workload: {users} users, {pages} pages, alpha=1.4, 50% writes, {workers} workers\n");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>14} {:>14}",
        "engine", "txns/sec", "aborts", "stashed", "mean read", "mean write"
    );

    for kind in [EngineKind::Doppel, EngineKind::Occ, EngineKind::Twopl] {
        let params = EngineParams {
            workers,
            phase_len: Duration::from_millis(10),
            ..EngineParams::default()
        };
        let engine = build_engine(kind, &params);
        let result = Driver::run(engine.as_ref(), &workload, &options);
        println!(
            "{:<8} {:>12.0} {:>10} {:>10} {:>12.0}us {:>12.0}us",
            result.engine,
            result.throughput,
            result.aborts,
            result.stashed,
            result.read_latency.mean_us,
            result.write_latency.mean_us,
        );
        engine.shutdown();
    }

    println!(
        "\nDoppel's reads of hot pages wait for the next joined phase (higher read latency), \
         in exchange for conflict-free parallel writes to the hot counters."
    );
}
