//! Networked RUBiS: drive the auction application on a `doppel-server` over
//! TCP through registered procedures.
//!
//! The flow demonstrated here is the paper's transaction model made
//! networked — procedures known to the system in advance, invoked by name:
//!
//! 1. connect a [`doppel_service::RemoteClient`] to a server with the
//!    `rubis` procedure pack — the address in `DOPPEL_SERVER_ADDR` if set
//!    (e.g. `doppel-server --procs rubis --rubis-scale small`), otherwise an
//!    in-process [`doppel_service::Server`] on an ephemeral localhost port
//!    (still real TCP) with the dataset preloaded;
//! 2. read an item page (`rubis.view_item` returns the `max_bid` /
//!    `num_bids` aggregates as a typed [`doppel_common::ProcResult`]);
//! 3. pipeline a burst of `rubis.store_bid` invocations with
//!    [`doppel_service::RemoteClient::submit_batch`] — one network round
//!    trip for the whole window. `StoreBid` reads-then-writes contended
//!    auction metadata, which a raw statement list cannot express: this
//!    transaction *requires* the procedure path to run remotely;
//! 4. read the page back and check the aggregates advanced by exactly the
//!    committed bids;
//! 5. invoke an unregistered name and observe the typed `UnknownProc` abort.
//!
//! Run with: `cargo run --release --example rubis_remote`
//! Or against a live server:
//! `DOPPEL_SERVER_ADDR=127.0.0.1:7777 cargo run --release --example rubis_remote`

use doppel_common::Args;
use doppel_rubis::procs::{args as rubis_args, hint_hot_items, register_rubis};
use doppel_rubis::{RubisData, RubisScale, TxnStyle};
use doppel_service::{RemoteClient, RemoteOutcome, Server, ServerEngine, ServiceConfig, WireAbort};
use doppel_common::ProcRegistry;
use std::sync::Arc;

const ITEM: u64 = 0;
const BIDS: usize = 40;

fn main() {
    // A server of our own with the rubis pack and preloaded data, unless the
    // environment points at a live one (CI starts
    // `doppel-server --procs rubis --rubis-scale small` separately).
    let external = std::env::var("DOPPEL_SERVER_ADDR").ok();
    let local_server = if external.is_none() {
        let mut registry = ProcRegistry::new();
        register_rubis(&mut registry);
        // Item 0 is the auction this example hammers: hint it contended so a
        // Doppel engine starts with its aggregates split.
        hint_hot_items(&mut registry, [ITEM]);
        let engine = ServerEngine::build("doppel", 2, 5, 256)
            .expect("doppel engine")
            .with_procs(Arc::new(registry));
        RubisData::new(RubisScale::small()).load(engine.engine.as_ref());
        Some(Server::start(engine, ServiceConfig::default(), "127.0.0.1:0").expect("bind"))
    } else {
        None
    };
    let addr = external
        .clone()
        .unwrap_or_else(|| local_server.as_ref().unwrap().local_addr().to_string());
    println!("connecting to {addr}");
    let mut client = RemoteClient::connect(&*addr).expect("connect to doppel-server");
    client.ping().expect("server answers ping");

    // The item page before bidding: typed aggregates straight off the wire.
    let view = client.call("rubis.view_item", rubis_args::view_item(ITEM)).expect("view_item");
    let result = view.proc_result().expect("view_item returns aggregates").clone();
    let (start_max, start_bids) =
        (result.get_int(0).expect("max_bid"), result.get_int(1).expect("num_bids"));
    println!("item {ITEM}: max_bid={start_max}, num_bids={start_bids}");

    // Bid ids must not collide with earlier runs against a long-lived
    // server; derive a unique base from the wall clock and process id.
    let base = {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos() as u64;
        (1 << 41) | ((nanos ^ ((std::process::id() as u64) << 32)) % (1 << 40))
    };

    // A pipelined burst of bids: every frame is written before the first
    // completion is awaited — one round trip for the whole window.
    let calls: Vec<(&str, Args)> = (0..BIDS)
        .map(|i| {
            let amount = start_max + 1 + i as i64;
            let bidder = (i % 50) as u64;
            (
                "rubis.store_bid",
                rubis_args::store_bid(base + i as u64, bidder, ITEM, amount, i as i64, TxnStyle::Doppel),
            )
        })
        .collect();
    let ids = client.submit_batch(&calls).expect("submit bid batch");
    let mut committed = 0i64;
    let mut deferred_bids = 0u32;
    let mut retries: Vec<usize> = Vec::new();
    for (i, id) in ids.into_iter().enumerate() {
        match client.wait(id).expect("bid completion") {
            RemoteOutcome::Committed { deferred, .. } => {
                committed += 1;
                deferred_bids += deferred as u32;
            }
            // Concurrent bids on one hot auction conflict under plain
            // concurrency control — the retryable abort is part of the
            // workload (the paper's harness retries with backoff).
            RemoteOutcome::Aborted { code, .. } if code.is_retryable() => retries.push(i),
            RemoteOutcome::Aborted { code, .. } => panic!("bid aborted: {code:?}"),
            RemoteOutcome::Rejected { .. } => panic!("bid rejected"),
        }
    }
    for i in retries {
        let (name, args) = &calls[i];
        loop {
            match client.call(name, args.clone()).expect("bid retry") {
                RemoteOutcome::Committed { deferred, .. } => {
                    committed += 1;
                    deferred_bids += deferred as u32;
                    break;
                }
                RemoteOutcome::Aborted { code, .. } if code.is_retryable() => continue,
                other => panic!("bid retry failed: {other:?}"),
            }
        }
    }
    if deferred_bids > 0 {
        println!("{deferred_bids} bid(s) were stash-deferred by a split phase and replayed");
    }
    println!("committed {committed} pipelined bids on item {ITEM}");

    // The page after: the aggregates advanced by exactly this run's bids.
    let view = client.call("rubis.view_item", rubis_args::view_item(ITEM)).expect("view_item");
    let result = view.proc_result().expect("aggregates").clone();
    let (end_max, end_bids) =
        (result.get_int(0).expect("max_bid"), result.get_int(1).expect("num_bids"));
    println!("item {ITEM}: max_bid={end_max}, num_bids={end_bids}");
    assert_eq!(
        end_bids - start_bids,
        committed,
        "num_bids must advance by exactly the committed bids"
    );
    assert!(
        end_max >= start_max + committed,
        "max_bid must reflect the highest pipelined bid"
    );

    // The bid history index lists the new bids too.
    let history =
        client.call("rubis.view_bid_history", rubis_args::view_bid_history(ITEM)).expect("history");
    let listed = history.proc_result().expect("history count").get_int(0).expect("count");
    println!("bid history lists {listed} bids");
    assert!(listed > 0, "the bids-per-item index must list the new bids");

    // Unknown procedure names are a typed, non-retryable abort — not a hang,
    // not a dropped connection.
    match client.call("rubis.not_a_procedure", Args::new()).expect("reply arrives") {
        RemoteOutcome::Aborted { code: WireAbort::UnknownProc, .. } => {
            println!("unknown procedure rejected with UnknownProc, as typed");
        }
        other => panic!("expected UnknownProc, got {other:?}"),
    }

    println!("networked RUBiS example finished");
}
