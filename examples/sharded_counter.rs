//! Sharded counters: spread one keyspace across several server processes
//! and commit cross-shard transactions through a [`doppel_service::ShardRouter`].
//!
//! What this demonstrates (the scale-out story built on §4's commutativity):
//!
//! 1. start a 3-shard cluster — three real `Server`s on ephemeral TCP ports,
//!    each owning the hash-slice of the keyspace a `ShardMap` gives it;
//! 2. **fast path**: a transaction whose statements are all commutative
//!    (`Add`/`Max`/`BitOr`/…) fans out per-shard slices with *no*
//!    coordination — the same argument that lets Doppel split a hot key
//!    across cores lets a router split a transaction across shards;
//! 3. **slow path**: a cross-shard transaction with a `Put` or a `Get` runs
//!    two-phase commit (prepare/vote/decide over the wire), paying
//!    coordination only when semantics demand it;
//! 4. read the route counters back and verify the totals.
//!
//! Run with: `cargo run --release --example sharded_counter`

use doppel_common::{Key, ShardMap, Value};
use doppel_service::{Server, ServerEngine, ServiceConfig, ShardOutcome, ShardRouter};
use doppel_service::RemoteTxn;

const SHARDS: usize = 3;
const COUNTERS: u64 = 12;

fn main() {
    // 1. The cluster: each shard serves an independent engine and preloads
    //    exactly the counters it owns (a real deployment would partition its
    //    dataset the same way, with the same ShardMap).
    let map = ShardMap::new(SHARDS);
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for shard in 0..SHARDS {
        let engine = ServerEngine::build("occ", 2, 20, 256).expect("occ engine");
        for k in 0..COUNTERS {
            if map.shard_of(Key::raw(k)) == shard {
                engine.engine.load(Key::raw(k), Value::Int(0));
            }
        }
        let server =
            Server::start(engine, ServiceConfig::default(), "127.0.0.1:0").expect("bind shard");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    println!("started {SHARDS} shards: {}", addrs.join(", "));

    let mut router = ShardRouter::connect(&addrs).expect("router connects");

    // 2. Fast path: +1 to every counter in ONE transaction. The keys span
    //    all shards, but every statement is a commutative Add, so the router
    //    ships per-shard slices with no prepare/decide round trips.
    let everyone = (0..COUNTERS).fold(RemoteTxn::new(), |t, k| t.add(Key::raw(k), 1));
    for _ in 0..500 {
        match router.execute(&everyone).expect("fan-out io") {
            out if out.is_committed() => {}
            other => panic!("fan-out increment failed: {other:?}"),
        }
    }

    // 3. Slow path: reset counter 0 and read counter 1 in one transaction.
    //    `Put` is not commutative and `Get` needs a consistent answer, so
    //    this runs two-phase commit across the owning shards.
    let audit = RemoteTxn::new().put(Key::raw(0), Value::Int(0)).get(Key::raw(1));
    match router.execute(&audit).expect("2pc io") {
        ShardOutcome::Committed { values, .. } => {
            assert_eq!(values, vec![Some(Value::Int(500))], "2PC read saw every fast-path add");
            println!("2PC audit read counter 1 = 500 while resetting counter 0");
        }
        other => panic!("audit transaction failed: {other:?}"),
    }

    // 4. Verify totals through single-shard reads and show the route split.
    for k in 0..COUNTERS {
        let expect = if k == 0 { 0 } else { 500 };
        match router.execute(&RemoteTxn::new().get(Key::raw(k))).expect("read io") {
            ShardOutcome::Committed { values, .. } => {
                assert_eq!(values, vec![Some(Value::Int(expect))], "counter {k}");
            }
            other => panic!("read of counter {k} failed: {other:?}"),
        }
    }
    let routes = router.routes();
    println!(
        "routes: {} direct, {} coordination-free fan-outs, {} two-phase",
        routes.direct, routes.fast_path, routes.two_phase
    );
    assert!(routes.fast_path >= 500, "the fan-outs took the fast path");
    assert!(routes.two_phase >= 1, "the audit took the slow path");
    assert!(routes.direct >= COUNTERS, "single-counter reads routed direct");

    // The merged cluster snapshot sums per-shard telemetry.
    let merged = router.stats_merged().expect("stats");
    println!(
        "cluster commits: {} (merged across {SHARDS} shards)",
        merged.scalar("commits").unwrap_or(0)
    );

    for s in &servers {
        s.shutdown();
    }
    println!("sharded counter example finished");
}
