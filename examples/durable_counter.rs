//! Durable counter: crash a Doppel database mid-run and recover it.
//!
//! The life cycle demonstrated here:
//!
//! 1. open a write-ahead log ([`doppel_wal::Wal`]) and attach it to the
//!    database with [`Engine::attach_commit_sink`];
//! 2. run increments across joined and split phases — joined-phase commits
//!    log their write sets, split-phase increments are absorbed by per-core
//!    slices and surface as **one merged-delta record per split key** at
//!    reconciliation (the paper's O(split keys) logging fast path);
//! 3. take a checkpoint, keep running, then "crash" (drop the database —
//!    memory is gone, the WAL directory is all that survives);
//! 4. recover into a fresh engine with [`doppel_wal::recover_into`] and
//!    verify no acknowledged-durable increment was lost.
//!
//! Run with: `cargo run --release --example durable_counter`

use doppel_common::{DoppelConfig, DurabilityConfig, Engine, Key, ProcedureFn, Value};
use doppel_db::{DoppelDb, Phase};
use doppel_wal::{checkpoint_engine, recover_into, TempWalDir, Wal};
use std::sync::Arc;

fn main() {
    let dir = TempWalDir::new("durable-counter-example");
    let counter = Key::raw(0);

    // ---- Phase 1: a durable database doing work -------------------------
    let wal = Arc::new(
        Wal::open(dir.path(), DurabilityConfig::default()).expect("open write-ahead log"),
    );
    let db = DoppelDb::new(DoppelConfig {
        workers: 1,
        unsplit_write_fraction: 0.0,
        ..DoppelConfig::default()
    });
    db.attach_commit_sink(wal.clone());
    db.load(counter, Value::Int(0));
    db.label_split(counter, doppel_common::OpKind::Add);

    let incr = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(0), 1)));
    let mut worker = db.handle(0);

    // 100 joined-phase increments: each commit logs its write set.
    for _ in 0..100 {
        assert!(worker.execute(incr.clone()).is_committed());
    }

    // 400 split-phase increments: no per-operation logging; the reconciling
    // worker emits a single Add(400) delta record at the transition.
    db.request_phase(Phase::Split);
    worker.safepoint();
    for _ in 0..400 {
        assert!(worker.execute(incr.clone()).is_committed());
    }
    db.request_phase(Phase::Joined);
    worker.safepoint();

    // Checkpoint, then a little more work that only the log tail covers.
    checkpoint_engine(&wal, &db).expect("checkpoint");
    for _ in 0..25 {
        assert!(worker.execute(incr.clone()).is_committed());
    }

    drop(worker);
    db.shutdown(); // final fsync
    let stats = db.stats();
    println!(
        "before crash: counter={:?}, {} commits, {} slice ops, {} log records, {} fsyncs",
        db.global_get(counter),
        stats.commits,
        stats.slice_ops,
        stats.log_records,
        stats.fsyncs,
    );
    assert!(
        stats.log_records < stats.slice_ops,
        "phase-aware logging must log far fewer records than slice operations"
    );

    // ---- Phase 2: the crash ---------------------------------------------
    drop(db); // all in-memory state is gone; only `dir` survives

    // ---- Phase 3: recovery ----------------------------------------------
    let recovered = DoppelDb::new(DoppelConfig::with_workers(1));
    let report = recover_into(&recovered, dir.path()).expect("recovery");
    println!(
        "recovered: counter={:?} ({} checkpoint records, {} log records replayed)",
        recovered.global_get(counter),
        report.checkpoint_records,
        report.log_records(),
    );
    assert_eq!(recovered.global_get(counter), Some(Value::Int(525)));
    println!("every acknowledged-durable increment survived the crash ✓");
}
