//! Remote counter: drive a `doppel-server` over TCP from a client process.
//!
//! The flow demonstrated here (the paper's deployment model, §3/§6):
//!
//! 1. connect a [`doppel_service::RemoteClient`] to a server — the address
//!    in `DOPPEL_SERVER_ADDR` if set (e.g. a separately started
//!    `doppel-server --engine doppel`), otherwise an in-process
//!    [`doppel_service::Server`] started on an ephemeral localhost port
//!    (still real TCP);
//! 2. label a counter split and commit splittable increments through the
//!    wire — during split phases these land in per-core slices;
//! 3. read the counter back: a read that arrives in a split phase is
//!    **stash-deferred** (the server answers `Deferred`, then the replayed
//!    `Done` after the next reconciliation) and must still observe every
//!    previously committed increment.
//!
//! Run with: `cargo run --release --example remote_counter`
//! Or against a live server:
//! `DOPPEL_SERVER_ADDR=127.0.0.1:7777 cargo run --release --example remote_counter`

use doppel_common::{Key, Op, Value};
use doppel_service::{RemoteClient, RemoteOutcome, RemoteTxn, Server, ServerEngine, ServiceConfig};
use std::time::{Duration, Instant};

fn main() {
    // A server of our own (fast phases so deferrals show up quickly), unless
    // the environment points at a live one.
    let external = std::env::var("DOPPEL_SERVER_ADDR").ok();
    let local_server = if external.is_none() {
        let engine = ServerEngine::build("doppel", 2, 5, 256).expect("doppel engine");
        Some(Server::start(engine, ServiceConfig::default(), "127.0.0.1:0").expect("bind"))
    } else {
        None
    };
    let addr = external
        .clone()
        .unwrap_or_else(|| local_server.as_ref().unwrap().local_addr().to_string());
    println!("connecting to {addr}");
    let mut client = RemoteClient::connect(&*addr).expect("connect to doppel-server");
    client.ping().expect("server answers ping");

    let counter = Key::raw(7);
    client.label_split(counter, Op::Add(0)).expect("label counter split");

    // Commit splittable increments through the wire.
    let mut committed = 0i64;
    for _ in 0..100 {
        match client.execute(&RemoteTxn::new().add(counter, 1)).expect("submit increment") {
            RemoteOutcome::Committed { .. } => committed += 1,
            other => panic!("increment failed: {other:?}"),
        }
    }
    println!("committed {committed} increments");

    // Read back, watching for stash-deferred completions. Keep the key hot
    // so it stays split; every committed read must see the full count.
    let mut deferred_reads = 0u32;
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let id = client.submit(&RemoteTxn::new().get(counter)).expect("submit read");
        match client.wait(id).expect("read completes") {
            RemoteOutcome::Committed { values, deferred, .. } => {
                let seen = match &values[0] {
                    Some(Value::Int(n)) => *n,
                    other => panic!("counter has unexpected value {other:?}"),
                };
                assert!(
                    seen >= committed,
                    "a committed read saw {seen} < {committed} committed increments"
                );
                if deferred {
                    deferred_reads += 1;
                    println!(
                        "read was stash-deferred by a split phase, replayed with value {seen}"
                    );
                    break;
                }
            }
            other => panic!("read failed: {other:?}"),
        }
        // Re-assert the label (a split phase with zero writes would unsplit
        // the key) and keep it hot before probing again.
        client.label_split(counter, Op::Add(0)).expect("re-label counter");
        for _ in 0..4 {
            match client.execute(&RemoteTxn::new().add(counter, 1)).expect("submit increment") {
                RemoteOutcome::Committed { .. } => committed += 1,
                other => panic!("increment failed: {other:?}"),
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // Final read-back. An external server may carry state from earlier runs
    // (e.g. a --durable server that recovered, or a rerun against the same
    // process), so require only that every increment of *this* run is
    // visible; our own fresh in-process server must match exactly.
    match client.execute(&RemoteTxn::new().get(counter)).expect("final read") {
        RemoteOutcome::Committed { values, .. } => {
            println!("final counter value: {:?} ({committed} committed this run)", values[0]);
            match &values[0] {
                Some(Value::Int(n)) if external.is_some() => assert!(*n >= committed),
                v => assert_eq!(*v, Some(Value::Int(committed))),
            }
        }
        other => panic!("final read failed: {other:?}"),
    }

    if deferred_reads > 0 {
        println!("observed {deferred_reads} stash-deferred read(s) — phase machinery exercised");
    } else {
        // Against an external non-Doppel server there is nothing to defer.
        println!("no stash-deferred read observed (engine without split phases?)");
    }
    // Deferral must be demonstrated against our own Doppel server, and
    // against an external server when the caller vouches it is Doppel
    // (DOPPEL_EXPECT_DEFERRAL=1, set by CI's live-server step so a wire
    // regression in Deferred/Done cannot pass silently).
    let expect_deferral =
        external.is_none() || std::env::var("DOPPEL_EXPECT_DEFERRAL").as_deref() == Ok("1");
    if expect_deferral {
        assert!(deferred_reads > 0, "doppel server should have stash-deferred a read");
    }
    println!("remote counter example finished");
}
