//! A game leaderboard built on Doppel's splittable `TopKInsert`, `Max` and
//! `Add` operations — the "top-k lists for news aggregators" use case the
//! paper's introduction motivates.
//!
//! Several threads submit scores concurrently:
//!
//! * the global top-10 leaderboard is one `TopK` record updated with
//!   `TopKInsert`;
//! * the all-time best score is an integer record updated with `Max`;
//! * the total number of submissions is a counter updated with `Add`.
//!
//! All three records are hot, commutative, and automatically split by the
//! classifier once they start causing conflicts.
//!
//! Run with: `cargo run --release -p doppel-bench --example leaderboard`

use doppel_common::{
    DoppelConfig, Engine, Key, OrderKey, Outcome, ProcedureFn, Table, TxError, Value,
};
use doppel_db::DoppelDb;
use std::sync::Arc;
use std::time::Duration;

const LEADERBOARD: Key = Key::new(Table::Raw, 1, 0);
const BEST_SCORE: Key = Key::new(Table::Raw, 2, 0);
const SUBMISSIONS: Key = Key::new(Table::Raw, 3, 0);
const TOP_K: usize = 10;

fn main() {
    let workers = 4;
    let db = Arc::new(DoppelDb::start(DoppelConfig {
        workers,
        phase_len: Duration::from_millis(5),
        ..DoppelConfig::default()
    }));
    db.load(BEST_SCORE, Value::Int(0));
    db.load(SUBMISSIONS, Value::Int(0));

    let per_thread = 25_000u64;
    let mut threads = Vec::new();
    for core in 0..workers {
        let db = Arc::clone(&db);
        threads.push(std::thread::spawn(move || {
            let mut worker = db.handle(core);
            let mut committed = 0u64;
            let mut rng_state = 0x1234_5678_u64 ^ ((core as u64 + 1) << 40);
            while committed < per_thread {
                // A cheap xorshift score generator.
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                let player = (core as u64) * 1_000_000 + committed;
                let score = (rng_state % 1_000_000) as i64;
                let submit = Arc::new(ProcedureFn::new("submit-score", move |tx| {
                    tx.topk_insert(
                        LEADERBOARD,
                        OrderKey::from(score),
                        player.to_le_bytes().to_vec().into(),
                        TOP_K,
                    )?;
                    tx.max(BEST_SCORE, score)?;
                    tx.add(SUBMISSIONS, 1)
                }));
                match worker.execute(submit) {
                    Outcome::Committed(_) => committed += 1,
                    Outcome::Aborted(TxError::Shutdown) => break,
                    Outcome::Aborted(_) => {}
                    Outcome::Stashed(_) => unreachable!("submissions never read split data"),
                }
            }
            committed
        }));
    }
    let committed: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    db.shutdown();

    let submissions = db.global_get(SUBMISSIONS).unwrap().as_int().unwrap();
    let best = db.global_get(BEST_SCORE).unwrap().as_int().unwrap();
    let board = db.global_get(LEADERBOARD).unwrap();
    let board = board.as_topk().unwrap();

    println!("submissions committed = {committed} (counter says {submissions})");
    println!("best score            = {best}");
    println!("top-{TOP_K} leaderboard:");
    for (rank, entry) in board.iter().enumerate() {
        let player = u64::from_le_bytes(entry.payload.as_ref().try_into().unwrap());
        println!("  #{:<2} score {:>7}  player {}", rank + 1, entry.order.primary(), player);
    }
    let stats = db.stats();
    println!(
        "split phases {}, records ever split {}, slice ops {}",
        stats.split_phases, stats.total_splits, stats.slice_ops
    );

    assert_eq!(submissions as u64, committed);
    assert_eq!(board.max().unwrap().order.primary(), best, "leaderboard head equals best score");
    assert!(board.len() <= TOP_K);
}
