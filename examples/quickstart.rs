//! Quickstart: a contended counter on Doppel.
//!
//! This example shows the minimal life cycle of a Doppel database:
//!
//! 1. create the database and pre-load a record;
//! 2. run transactions through per-core worker handles;
//! 3. let the automatic coordinator cycle joined / split / reconciliation
//!    phases while several threads hammer the same counter;
//! 4. read the reconciled value and the engine statistics at the end.
//!
//! Run with: `cargo run --release -p doppel-bench --example quickstart`

use doppel_common::{DoppelConfig, Engine, Key, Outcome, ProcedureFn, TxError, Value};
use doppel_db::DoppelDb;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A database with 4 workers and a 5 ms phase length. `start` spawns the
    // phase coordinator; `new` would leave phases entirely under manual
    // control (useful in tests).
    let config = DoppelConfig {
        workers: 4,
        phase_len: Duration::from_millis(5),
        ..DoppelConfig::default()
    };
    let db = Arc::new(DoppelDb::start(config));

    // Pre-load the records: one globally popular counter plus a per-thread
    // scratch key.
    let hot = Key::raw(0);
    db.load(hot, Value::Int(0));
    for t in 1..=4u64 {
        db.load(Key::raw(t), Value::Int(0));
    }

    // Every transaction increments the hot counter and the thread's own key —
    // the hot counter is exactly the kind of record phase reconciliation
    // splits across cores.
    let per_thread = 50_000;
    let mut threads = Vec::new();
    for core in 0..4usize {
        let db = Arc::clone(&db);
        threads.push(std::thread::spawn(move || {
            let mut worker = db.handle(core);
            let own = Key::raw(core as u64 + 1);
            let txn = Arc::new(ProcedureFn::new("like", move |tx| {
                tx.add(hot, 1)?;
                tx.add(own, 1)
            }));
            let mut committed = 0;
            while committed < per_thread {
                match worker.execute(txn.clone()) {
                    Outcome::Committed(_) => committed += 1,
                    Outcome::Aborted(TxError::Shutdown) => break,
                    Outcome::Aborted(_) => {} // conflict: just try again
                    Outcome::Stashed(_) => unreachable!("increments never stash"),
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    db.shutdown();

    let total = db.global_get(hot).unwrap().as_int().unwrap();
    let stats = db.stats();
    println!("hot counter          = {total}");
    println!("committed            = {}", stats.commits);
    println!("conflict aborts      = {}", stats.conflicts);
    println!("joined phases        = {}", stats.joined_phases);
    println!("split phases         = {}", stats.split_phases);
    println!("records ever split   = {}", stats.total_splits);
    println!("slice operations     = {}", stats.slice_ops);

    assert_eq!(total, 4 * per_thread, "every committed increment is reflected exactly once");
    println!("OK: the counter equals the number of committed increments.");
}
