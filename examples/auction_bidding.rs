//! Auction bidding with RUBiS' `StoreBid`, in both forms from the paper:
//! the classic read-modify-write transaction (Figure 6) and the commutative
//! Doppel transaction (Figure 7).
//!
//! A popular auction is hammered with bids from several threads. Both forms
//! must produce the same auction metadata (highest bid, bid count); the
//! Doppel form additionally lets the engine split the metadata so the bids
//! proceed in parallel during split phases.
//!
//! Run with: `cargo run --release -p doppel-bench --example auction_bidding`

use doppel_common::{DoppelConfig, Engine, Key, Outcome, TxError, Value};
use doppel_db::DoppelDb;
use doppel_rubis::schema::keys;
use doppel_rubis::txns::{StoreBid, TxnStyle, ViewItem};
use doppel_rubis::{RubisData, RubisScale};
use std::sync::Arc;
use std::time::Duration;

fn run_auction(style: TxnStyle) -> (i64, i64, u64) {
    let workers = 4;
    let db = Arc::new(DoppelDb::start(DoppelConfig {
        workers,
        phase_len: Duration::from_millis(5),
        ..DoppelConfig::default()
    }));
    // A small RUBiS database; item 0 is the popular auction everyone bids on.
    let scale = RubisScale { users: 1_000, items: 100, categories: 5, regions: 4 };
    RubisData::new(scale).load(db.as_ref());

    let hot_item = 0u64;
    let bids_per_thread = 10_000u64;
    let mut threads = Vec::new();
    for core in 0..workers {
        let db = Arc::clone(&db);
        threads.push(std::thread::spawn(move || {
            let mut worker = db.handle(core);
            let mut committed = 0u64;
            let mut seq = 0u64;
            while committed < bids_per_thread {
                seq += 1;
                let bid = Arc::new(StoreBid {
                    bid_id: ((core as u64) << 32) | seq,
                    bidder: (core as u64) * 100 + (seq % 100),
                    item: hot_item,
                    amount: 1_000 + (seq as i64 % 10_000),
                    now: seq as i64,
                    style,
                });
                match worker.execute(bid) {
                    Outcome::Committed(_) => committed += 1,
                    Outcome::Aborted(TxError::Shutdown) => break,
                    Outcome::Aborted(_) => {}
                    // StoreBid in Doppel style never reads split data, so it
                    // is never stashed; the classic style may be if another
                    // workload split the metadata (not the case here).
                    Outcome::Stashed(_) => {}
                }
            }

            // Occasionally viewing the item is fine too — in a split phase
            // this read would be stashed and replayed automatically.
            let _ = worker.execute(Arc::new(ViewItem { item: hot_item }));
            committed
        }));
    }
    let committed: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    db.shutdown();

    let max_bid = db.global_get(keys::max_bid(hot_item)).unwrap().as_int().unwrap();
    let num_bids = db.global_get(keys::num_bids(hot_item)).unwrap().as_int().unwrap();
    let stats = db.stats();
    println!(
        "  {style:?}: committed {committed} bids, max bid {max_bid}, bid count {num_bids}, \
         conflicts {}, split phases {}, slice ops {}",
        stats.conflicts, stats.split_phases, stats.slice_ops
    );
    assert_eq!(num_bids as u64, committed, "the bid counter must count every committed bid");
    (max_bid, num_bids, committed)
}

fn main() {
    println!("Bidding on one popular auction with 4 workers:");
    let (classic_max, _, _) = run_auction(TxnStyle::Classic);
    let (doppel_max, _, _) = run_auction(TxnStyle::Doppel);
    println!(
        "\nBoth transaction forms maintain the same auction invariants \
         (classic max bid {classic_max}, doppel max bid {doppel_max}); the Doppel form is the \
         one the engine can execute in parallel during split phases."
    );

    // Show what the original, non-commutative StoreBid looks like when the
    // metadata is read directly — exactly Figure 6 of the paper.
    let db = DoppelDb::new(DoppelConfig::with_workers(1));
    db.load(keys::max_bid(9), Value::Int(100));
    db.load(keys::num_bids(9), Value::Int(0));
    db.load(Key::raw(1), Value::Int(0));
    let mut w = db.handle(0);
    let out = w.execute(Arc::new(StoreBid {
        bid_id: 1,
        bidder: 7,
        item: 9,
        amount: 2_500,
        now: 1,
        style: TxnStyle::Classic,
    }));
    assert!(out.is_committed());
    println!(
        "single classic bid on item 9: max bid is now {}",
        db.global_get(keys::max_bid(9)).unwrap().as_int().unwrap()
    );
}
