//! Workspace root package.
//!
//! This package exists to host the cross-engine integration tests in
//! `tests/` and the runnable examples in `examples/`. It re-exports the
//! workspace crates so a single `use doppel_repro::…` works from scratch
//! buffers, but the tests and examples import the member crates directly.

pub use doppel_atomic;
pub use doppel_bench;
pub use doppel_common;
pub use doppel_db;
pub use doppel_occ;
pub use doppel_rubis;
pub use doppel_store;
pub use doppel_twopl;
pub use doppel_workloads;
