//! Sharding is a *placement* decision, not a semantics change.
//!
//! The differential: a fuzzer-generated stream of mixed transactions —
//! commutative writes (fast-path eligible), `Put`s and reads (slow-path) —
//! executed through a [`ShardRouter`] over a live multi-process-shaped
//! cluster (real `Server`s, real TCP, real wire protocol) must leave the
//! union-of-shards store in exactly the state a single-process engine
//! reaches executing the same stream directly, and must return the same
//! `Get` results transaction by transaction. Run once more with every
//! cross-shard write forced through two-phase commit, which must also agree.

use doppel_common::{Engine, Key, Op, ShardMap, Value};
use doppel_service::{
    RemoteProcedure, RemoteTxn, Server, ServerEngine, ServiceConfig, ShardOutcome, ShardRouter,
};
use proptest::prelude::*;
use std::sync::Arc;

const KEYS: u64 = 16;

/// One generated statement over the integer keyspace.
#[derive(Clone, Debug)]
enum Stmt {
    Add(u64, i64),
    Max(u64, i64),
    BitOr(u64, i64),
    Put(u64, i64),
    Get(u64),
}

impl Stmt {
    fn build(self, txn: RemoteTxn) -> RemoteTxn {
        match self {
            Stmt::Add(k, n) => txn.add(Key::raw(k), n),
            Stmt::Max(k, n) => txn.max(Key::raw(k), n),
            Stmt::BitOr(k, n) => txn.write(Key::raw(k), Op::BitOr(n)),
            Stmt::Put(k, n) => txn.put(Key::raw(k), Value::Int(n)),
            Stmt::Get(k) => txn.get(Key::raw(k)),
        }
    }
}

fn arb_txn() -> impl Strategy<Value = Vec<Stmt>> {
    let stmt = (0u64..KEYS, -100i64..100, 0u8..8).prop_map(|(k, n, kind)| match kind {
        0 | 1 => Stmt::Add(k, n),
        2 => Stmt::Max(k, n),
        3 => Stmt::BitOr(k, n & 0xFF),
        4 => Stmt::Put(k, n),
        _ => Stmt::Get(k),
    });
    prop::collection::vec(stmt, 1..4)
}

fn arb_stream() -> impl Strategy<Value = Vec<Vec<Stmt>>> {
    prop::collection::vec(arb_txn(), 0..30)
}

/// A live cluster of in-process servers plus their engines (kept aside so
/// the test can inspect the stores after shutdown).
struct Cluster {
    servers: Vec<Server>,
    engines: Vec<Arc<dyn Engine>>,
    addrs: Vec<String>,
}

fn start_cluster(shards: usize) -> Cluster {
    let mut servers = Vec::new();
    let mut engines: Vec<Arc<dyn Engine>> = Vec::new();
    let mut addrs = Vec::new();
    let map = ShardMap::new(shards);
    for s in 0..shards {
        let engine: Arc<dyn Engine> = Arc::new(doppel_occ::OccEngine::new(1, 32));
        // Each shard preloads exactly the keys it owns, as a real deployment
        // would.
        for k in 0..KEYS {
            if map.shard_of(Key::raw(k)) == s {
                engine.load(Key::raw(k), Value::Int(0));
            }
        }
        let server = Server::start(
            ServerEngine::other(Arc::clone(&engine)),
            ServiceConfig::default(),
            "127.0.0.1:0",
        )
        .expect("server starts");
        addrs.push(server.local_addr().to_string());
        servers.push(server);
        engines.push(engine);
    }
    Cluster { servers, engines, addrs }
}

impl Cluster {
    /// The owning shard's value for every key, in key order — the logical
    /// store the cluster jointly serves.
    fn snapshot(&self) -> Vec<Option<Value>> {
        let map = ShardMap::new(self.engines.len());
        (0..KEYS)
            .map(|k| self.engines[map.shard_of(Key::raw(k))].global_get(Key::raw(k)))
            .collect()
    }

    fn shutdown(&self) {
        for s in &self.servers {
            s.shutdown();
        }
    }
}

/// Runs the stream through a router over a fresh cluster; returns each
/// transaction's `Get` results and the final logical store.
fn run_sharded(
    shards: usize,
    stream: &[Vec<Stmt>],
    force_two_phase: bool,
) -> (Vec<Vec<Option<Value>>>, Vec<Option<Value>>) {
    let cluster = start_cluster(shards);
    let mut router = ShardRouter::connect(&cluster.addrs).expect("router connects");
    router.force_two_phase(force_two_phase);
    let mut values = Vec::new();
    for stmts in stream {
        let txn = stmts.iter().cloned().fold(RemoteTxn::new(), |t, s| s.build(t));
        match router.execute(&txn).expect("routing io") {
            ShardOutcome::Committed { values: v, .. } => values.push(v),
            other => panic!("sharded execution did not commit: {other:?}"),
        }
    }
    cluster.shutdown();
    (values, cluster.snapshot())
}

/// Runs the stream directly on one engine (the reference), through the very
/// same `RemoteProcedure` the servers execute.
fn run_reference(stream: &[Vec<Stmt>]) -> (Vec<Vec<Option<Value>>>, Vec<Option<Value>>) {
    let engine = doppel_occ::OccEngine::new(1, 32);
    for k in 0..KEYS {
        engine.load(Key::raw(k), Value::Int(0));
    }
    let mut handle = engine.handle(0);
    let mut values = Vec::new();
    for stmts in stream {
        let txn = stmts.iter().cloned().fold(RemoteTxn::new(), |t, s| s.build(t));
        let proc = Arc::new(RemoteProcedure::new(txn.stmts().to_vec()));
        assert!(handle.execute(proc.clone()).is_committed(), "reference aborted");
        values.push(proc.take_values());
    }
    drop(handle);
    engine.shutdown();
    let snap = (0..KEYS).map(|k| engine.global_get(Key::raw(k))).collect();
    (values, snap)
}

proptest! {
    /// 2-shard cluster ≡ single engine: same per-transaction reads, same
    /// final store — on the mixed fast/slow routing and with two-phase
    /// commit forced everywhere.
    #[test]
    fn sharded_cluster_equals_single_engine(stream in arb_stream()) {
        let (ref_values, ref_store) = run_reference(&stream);

        let (values, store) = run_sharded(2, &stream, false);
        prop_assert_eq!(&store, &ref_store, "mixed routing diverged on the final store");
        prop_assert_eq!(&values, &ref_values, "mixed routing diverged on reads");

        let (values, store) = run_sharded(2, &stream, true);
        prop_assert_eq!(&store, &ref_store, "forced 2PC diverged on the final store");
        prop_assert_eq!(&values, &ref_values, "forced 2PC diverged on reads");
    }
}

/// Deterministic 4-shard smoke: all three routing paths fire and the
/// cluster agrees with a hand-computed model.
#[test]
fn four_shard_routing_paths_agree_with_model() {
    let cluster = start_cluster(4);
    let mut router = ShardRouter::connect(&cluster.addrs).expect("router connects");
    assert_eq!(router.shards(), 4);

    // Commutative fan-out: +1 to every key in one transaction (keys span
    // all four shards), fifty times.
    let everyone = (0..KEYS).fold(RemoteTxn::new(), |t, k| t.add(Key::raw(k), 1));
    for _ in 0..50 {
        assert!(router.execute(&everyone).expect("io").is_committed());
    }
    // Slow path: a cross-shard read-modify-write shape (Get + Put + Add).
    let mixed = RemoteTxn::new().get(Key::raw(0)).put(Key::raw(1), Value::Int(500)).add(Key::raw(2), 7);
    let out = router.execute(&mixed).expect("io");
    assert_eq!(out.values(), Some(&[Some(Value::Int(50))][..]), "2PC read saw the fan-out total");
    // Direct path: single-key transactions.
    for _ in 0..5 {
        assert!(router.execute(&RemoteTxn::new().add(Key::raw(3), 10)).expect("io").is_committed());
    }
    let routes = router.routes();
    assert!(routes.fast_path >= 50, "fan-outs took the fast path: {routes:?}");
    assert!(routes.two_phase >= 1, "the mixed txn took the slow path: {routes:?}");
    assert!(routes.direct >= 5, "single-key txns routed direct: {routes:?}");

    // Model: key0 = 50, key1 = 500 (Put), key2 = 50 + 7, key3 = 50 + 50.
    let store = cluster.snapshot();
    cluster.shutdown();
    assert_eq!(store[0], Some(Value::Int(50)));
    assert_eq!(store[1], Some(Value::Int(500)));
    assert_eq!(store[2], Some(Value::Int(57)));
    assert_eq!(store[3], Some(Value::Int(100)));
}

/// The pipelined batch API agrees with one-at-a-time execution.
#[test]
fn execute_many_matches_sequential_outcomes() {
    let cluster = start_cluster(3);
    let mut router = ShardRouter::connect(&cluster.addrs).expect("router connects");
    let txns: Vec<RemoteTxn> = (0..40)
        .map(|i| {
            RemoteTxn::new()
                .add(Key::raw(i % KEYS), 2)
                .add(Key::raw((i + 3) % KEYS), 5)
        })
        .collect();
    let outcomes = router.execute_many(&txns).expect("batch io");
    assert_eq!(outcomes.len(), txns.len());
    assert!(outcomes.iter().all(|o| o.is_committed()), "batch commits everywhere");

    // Every key's total matches the model sum.
    let mut model = vec![0i64; KEYS as usize];
    for i in 0..40u64 {
        model[(i % KEYS) as usize] += 2;
        model[((i + 3) % KEYS) as usize] += 5;
    }
    let store = cluster.snapshot();
    cluster.shutdown();
    for (k, expected) in model.into_iter().enumerate() {
        assert_eq!(store[k], Some(Value::Int(expected)), "key {k}");
    }
}
