//! Differential crash-recovery property suite.
//!
//! The durability invariant under test: **for any injected crash point,
//! recovery yields exactly the durable prefix of the log** — every record
//! fully written before the crash byte is recovered, no record is ever
//! partially applied, and the recovered store equals the model state after
//! exactly that record prefix. For the baseline engines a record *is* a
//! transaction, so no partial transaction ever surfaces. For Doppel the
//! contract is phase-aware (see README "Durability"): a split-phase
//! transaction's reconciled writes become durable at commit while its split
//! writes become durable with the next reconciliation's merged-delta record,
//! so the two pieces are independently durable — the model below
//! (`doppel_expected_states`) encodes precisely that contract. Verified for
//! all four engines (OCC, 2PL, Atomic, Doppel) and, in the dedicated
//! reconciliation test, for every operation registered in the
//! splittable-operation registry.
//!
//! Methodology: each case runs a deterministic single-worker mixed workload
//! twice against the same WAL configuration — once without a crash (to learn
//! the log length) and once with [`DurabilityConfig::crash_at_byte`] armed at
//! a proptest-chosen offset. Because the runs are deterministic, the crashed
//! log is byte-for-byte a prefix of the clean one, and the number of intact
//! records tells us exactly which workload prefix must have survived.

use doppel_atomic::AtomicEngine;
use doppel_common::{
    DurabilityConfig, Engine, Key, Op, OpKind, OrderKey, Procedure, ProcedureFn, Tx, Value,
};
use doppel_db::{DoppelDb, Phase};
use doppel_occ::OccEngine;
use doppel_twopl::TwoplEngine;
use doppel_wal::{recover, recover_into, LogRecord, TempWalDir, Wal};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

// Keys 1..=4 hold integers; key 0 is reserved for the split-`Add` counter the
// Doppel tests use (any *other* operation kind on a split key would stash
// during split phases, and these workloads are built to always commit).
const INT_KEY_CHOICES: u64 = 5;
const SET_KEY: u64 = 5;
const OPUT_KEY: u64 = 6;
const TOPK_KEY: u64 = 7;

/// One generated transaction: 1–3 operations, type-consistent per key.
#[derive(Clone, Debug)]
struct TxnSpec {
    ops: Vec<(Key, Op)>,
}

fn op_for(key_choice: u64, arg: i64, aux: i64) -> (Key, Op) {
    match key_choice {
        k if k < INT_KEY_CHOICES => {
            let key = Key::raw(1 + k % 4);
            let op = match aux.rem_euclid(4) {
                0 => Op::Add(arg),
                1 => Op::Max(arg * 3),
                2 => Op::BitOr(arg & 0xFF),
                // Mult is exercised by the per-op reconciliation test below;
                // here it would overflow across long op sequences.
                _ => Op::BoundedAdd { n: arg, bound: 400 },
            };
            (key, op)
        }
        k if k == SET_KEY => (Key::raw(SET_KEY), Op::SetUnion([arg % 32].into_iter().collect())),
        k if k == OPUT_KEY => (
            Key::raw(OPUT_KEY),
            Op::OPut {
                order: OrderKey::pair(arg, aux),
                core: 0,
                payload: format!("p{arg}").into_bytes().into(),
            },
        ),
        _ => (
            Key::raw(TOPK_KEY),
            Op::TopKInsert {
                order: OrderKey::pair(arg, aux),
                core: 0,
                payload: format!("t{arg}").into_bytes().into(),
                k: 4,
            },
        ),
    }
}

fn arb_txns() -> impl Strategy<Value = Vec<TxnSpec>> {
    prop::collection::vec(
        prop::collection::vec((0u64..8, 1i64..50, 0i64..100), 1..4),
        2..14,
    )
    .prop_map(|txns| {
        txns.into_iter()
            .map(|ops| TxnSpec {
                ops: ops.into_iter().map(|(k, arg, aux)| op_for(k, arg, aux)).collect(),
            })
            .collect()
    })
}

fn proc_for(spec: &TxnSpec) -> Arc<dyn Procedure> {
    let ops = spec.ops.clone();
    Arc::new(ProcedureFn::new("mixed", move |tx: &mut dyn Tx| {
        for (k, op) in &ops {
            tx.write_op(*k, op.clone())?;
        }
        Ok(())
    }))
}

/// Applies a transaction's operations to a model state via the operations'
/// own semantics — the ground truth both the engines and replay must match.
fn model_apply(state: &mut BTreeMap<Key, Value>, ops: &[(Key, Op)]) {
    for (k, op) in ops {
        let new = op.apply_to(state.get(k)).expect("model ops are type-consistent");
        state.insert(*k, new);
    }
}

/// The engine's store as a map (absent records excluded).
fn engine_state(engine: &dyn Engine) -> BTreeMap<Key, Value> {
    let mut out = BTreeMap::new();
    engine.for_each_record(&mut |k, v| {
        out.insert(k, v.clone());
    });
    out
}

enum Baseline {
    Occ,
    Twopl,
    Atomic,
}

fn build_baseline(which: &Baseline) -> Box<dyn Engine> {
    match which {
        Baseline::Occ => Box::new(OccEngine::new(1, 16)),
        Baseline::Twopl => Box::new(TwoplEngine::new(1, 16)),
        Baseline::Atomic => Box::new(AtomicEngine::new(1)),
    }
}

/// Runs `txns` serially on one worker of a fresh baseline engine with a
/// synchronous WAL in `dir`; returns the log's end offset.
fn run_baseline_durable(
    which: &Baseline,
    txns: &[TxnSpec],
    dir: &std::path::Path,
    crash_at: Option<u64>,
) -> u64 {
    let cfg = DurabilityConfig { crash_at_byte: crash_at, ..DurabilityConfig::synchronous() };
    let wal = Arc::new(Wal::open(dir, cfg).unwrap());
    let engine = build_baseline(which);
    engine.attach_commit_sink(wal.clone());
    let mut handle = engine.handle(0);
    for spec in txns {
        let out = handle.execute(proc_for(spec));
        assert!(out.is_committed(), "serial single-worker txn must commit: {out:?}");
    }
    drop(handle);
    engine.shutdown();
    wal.end_lsn()
}

proptest! {
    /// Prefix consistency for the three baseline engines: crash the log at an
    /// arbitrary byte, recover, and the recovered store must equal the model
    /// state after exactly the intact prefix of transactions — group-committed
    /// transactions are durable, partial transactions never surface.
    #[test]
    fn baseline_crash_recovery_is_prefix_consistent(
        txns in arb_txns(),
        frac_bp in 0u64..=10_000,
    ) {
        for which in [Baseline::Occ, Baseline::Twopl, Baseline::Atomic] {
            // Pass 1: no crash, to learn the log length.
            let clean = TempWalDir::new("crash-clean");
            let full_len = run_baseline_durable(&which, &txns, clean.path(), None);
            let magic = doppel_wal::LOG_MAGIC.len() as u64;
            let crash_at = magic + (full_len - magic) * frac_bp / 10_000;

            // Pass 2: same deterministic run, crash injected at `crash_at`.
            let crashed = TempWalDir::new("crash-injected");
            run_baseline_durable(&which, &txns, crashed.path(), Some(crash_at));

            // Every intact record is one whole transaction (synchronous group
            // commit, one record per committed txn, every txn writes).
            let recovered_log = recover(crashed.path()).unwrap();
            let n = recovered_log.records.len();
            prop_assert!(n <= txns.len());
            for rec in &recovered_log.records {
                prop_assert!(matches!(rec, LogRecord::Commit { .. }));
            }

            // Recover into a fresh engine and compare with the model prefix.
            let fresh = build_baseline(&which);
            let report = recover_into(fresh.as_ref(), crashed.path()).unwrap();
            prop_assert_eq!(report.commit_records, n as u64);
            let mut expected = BTreeMap::new();
            for spec in &txns[..n] {
                model_apply(&mut expected, &spec.ops);
            }
            prop_assert_eq!(
                engine_state(fresh.as_ref()),
                expected,
                "prefix of {} txns (crash at byte {} of {})",
                n,
                crash_at,
                full_len
            );
        }
    }
}

// ---------------------------------------------------------------- doppel

/// Doppel run: phases toggle every 4 transactions; key 0 is split for `Add`
/// during split chunks. Returns the log end offset.
fn run_doppel_durable(txns: &[TxnSpec], dir: &std::path::Path, crash_at: Option<u64>) -> u64 {
    let cfg = DurabilityConfig { crash_at_byte: crash_at, ..DurabilityConfig::synchronous() };
    let wal = Arc::new(Wal::open(dir, cfg).unwrap());
    let db = DoppelDb::new(doppel_common::DoppelConfig {
        workers: 1,
        unsplit_write_fraction: 0.0,
        ..Default::default()
    });
    db.attach_commit_sink(wal.clone());
    db.label_split(Key::raw(0), OpKind::Add);
    let mut w = db.handle(0);
    for (i, spec) in txns.iter().enumerate() {
        if i % 4 == 0 && i > 0 {
            let target = if (i / 4) % 2 == 1 { Phase::Split } else { Phase::Joined };
            db.request_phase(target);
            w.safepoint();
        }
        let out = w.execute(proc_for(spec));
        assert!(out.is_committed(), "single-worker Doppel txn must commit: {out:?}");
    }
    if db.current_phase() == Phase::Split {
        db.request_phase(Phase::Joined);
        w.safepoint();
    }
    drop(w);
    db.shutdown();
    wal.end_lsn()
}

/// The deterministic log-record model of [`run_doppel_durable`]: the state
/// after each record, in append order. During split chunks, `Add`s on key 0
/// accumulate into one pending delta that becomes a single record at the next
/// reconciliation; everything else logs conventionally at commit.
fn doppel_expected_states(txns: &[TxnSpec]) -> Vec<BTreeMap<Key, Value>> {
    let mut states = vec![BTreeMap::new()];
    let mut state: BTreeMap<Key, Value> = BTreeMap::new();
    let mut pending_delta = 0i64;
    let split_key = Key::raw(0);

    let flush_delta = |state: &mut BTreeMap<Key, Value>,
                           states: &mut Vec<BTreeMap<Key, Value>>,
                           pending: &mut i64| {
        if *pending != 0 {
            model_apply(state, &[(split_key, Op::Add(*pending))]);
            states.push(state.clone());
            *pending = 0;
        }
    };

    for (i, spec) in txns.iter().enumerate() {
        let in_split = (i / 4) % 2 == 1;
        if i % 4 == 0 && i > 0 && !in_split {
            // Entering a joined chunk: reconciliation emits the delta record.
            flush_delta(&mut state, &mut states, &mut pending_delta);
        }
        if in_split {
            let (split_ops, occ_ops): (Vec<_>, Vec<_>) =
                spec.ops.iter().cloned().partition(|(k, op)| {
                    *k == split_key && op.kind() == OpKind::Add
                });
            for (_, op) in &split_ops {
                if let Op::Add(n) = op {
                    pending_delta += n;
                }
            }
            if !occ_ops.is_empty() {
                model_apply(&mut state, &occ_ops);
                states.push(state.clone());
            }
        } else {
            model_apply(&mut state, &spec.ops);
            states.push(state.clone());
        }
    }
    // The run ends with a forced transition to joined.
    flush_delta(&mut state, &mut states, &mut pending_delta);
    states
}

proptest! {
    /// Prefix consistency for Doppel with phase-aware logging: commits log
    /// conventionally, split-phase `Add`s surface as one merged-delta record
    /// per reconciliation, and any crash point recovers to exactly one of the
    /// model's per-record states.
    #[test]
    fn doppel_crash_recovery_is_prefix_consistent(
        txns in arb_txns(),
        frac_bp in 0u64..=10_000,
    ) {
        // Bias every transaction to also touch the split key so split chunks
        // are meaningful: prepend an Add on key 0.
        let txns: Vec<TxnSpec> = txns
            .into_iter()
            .enumerate()
            .map(|(i, mut t)| {
                t.ops.insert(0, (Key::raw(0), Op::Add(1 + (i as i64 % 7))));
                t
            })
            .collect();

        let clean = TempWalDir::new("doppel-clean");
        let full_len = run_doppel_durable(&txns, clean.path(), None);
        let magic = doppel_wal::LOG_MAGIC.len() as u64;
        let crash_at = magic + (full_len - magic) * frac_bp / 10_000;

        let crashed = TempWalDir::new("doppel-crashed");
        run_doppel_durable(&txns, crashed.path(), Some(crash_at));

        let fresh = OccEngine::new(1, 16);
        let report = recover_into(&fresh, crashed.path()).unwrap();
        let n = report.log_records() as usize;

        let states = doppel_expected_states(&txns);
        prop_assert!(n < states.len(), "record count {} exceeds model {}", n, states.len() - 1);
        prop_assert_eq!(
            engine_state(&fresh),
            states[n].clone(),
            "crash at byte {} of {}: {} records recovered",
            crash_at,
            full_len,
            n
        );
    }
}

/// Without a crash, Doppel's phase-aware log and OCC's conventional log must
/// recover to identical states for the same serial workload.
#[test]
fn doppel_and_occ_recover_to_equivalent_states() {
    let txns: Vec<TxnSpec> = (0..24)
        .map(|i| {
            let mut ops = vec![(Key::raw(0), Op::Add(1 + i % 5))];
            ops.extend([op_for(1 + (i as u64 % 7), 3 + i % 11, i)]);
            TxnSpec { ops }
        })
        .collect();

    let occ_dir = TempWalDir::new("equiv-occ");
    run_baseline_durable(&Baseline::Occ, &txns, occ_dir.path(), None);
    let doppel_dir = TempWalDir::new("equiv-doppel");
    run_doppel_durable(&txns, doppel_dir.path(), None);

    // Doppel's log is much shorter on the split key (merged deltas), but both
    // recover to the same state.
    let from_occ = OccEngine::new(1, 16);
    recover_into(&from_occ, occ_dir.path()).unwrap();
    let from_doppel = OccEngine::new(1, 16);
    recover_into(&from_doppel, doppel_dir.path()).unwrap();
    assert_eq!(engine_state(&from_occ), engine_state(&from_doppel));

    // And both equal a volatile in-memory run of the same transactions.
    let mut expected = BTreeMap::new();
    for spec in &txns {
        model_apply(&mut expected, &spec.ops);
    }
    assert_eq!(engine_state(&from_occ), expected);
}

/// Every registered splittable operation survives the full split → slice →
/// reconcile → merged-delta-log → crash → replay cycle: the recovered value
/// equals the live engine's value for each operation kind.
#[test]
fn every_registered_split_op_replays_through_reconciliation_log() {
    let split_kinds: Vec<OpKind> =
        OpKind::ALL.iter().copied().filter(|k| k.splittable()).collect();
    assert!(split_kinds.len() >= 9, "registry lost operations?");

    for kind in split_kinds {
        let ops: Vec<Op> = (1..=6)
            .map(|i| match kind {
                OpKind::Add => Op::Add(i),
                OpKind::Max => Op::Max(i * 10),
                OpKind::Min => Op::Min(-i * 10),
                OpKind::Mult => Op::Mult(i % 3 + 1),
                OpKind::BitOr => Op::BitOr(1 << i),
                OpKind::BoundedAdd => Op::BoundedAdd { n: i, bound: 15 },
                OpKind::SetUnion => Op::SetUnion([i, i * 2].into_iter().collect()),
                OpKind::OPut => Op::OPut {
                    order: OrderKey::from(i),
                    core: 0,
                    payload: format!("v{i}").into_bytes().into(),
                },
                OpKind::TopKInsert => Op::TopKInsert {
                    order: OrderKey::from(i),
                    core: 0,
                    payload: format!("v{i}").into_bytes().into(),
                    k: 3,
                },
                other => panic!("{other} is not splittable"),
            })
            .collect();

        let dir = TempWalDir::new(&format!("splitop-{kind}"));
        let wal =
            Arc::new(Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap());
        let db = DoppelDb::new(doppel_common::DoppelConfig {
            workers: 1,
            unsplit_write_fraction: 0.0,
            ..Default::default()
        });
        db.attach_commit_sink(wal.clone());
        let key = Key::raw(0);
        db.label_split(key, kind);
        let mut w = db.handle(0);
        db.request_phase(Phase::Split);
        w.safepoint();
        for op in &ops {
            let op = op.clone();
            let proc = Arc::new(ProcedureFn::new("op", move |tx: &mut dyn Tx| {
                tx.write_op(key, op.clone())
            }));
            assert!(w.execute(proc).is_committed(), "{kind} split-phase op must commit");
        }
        db.request_phase(Phase::Joined);
        w.safepoint();
        drop(w);
        db.shutdown();
        let live = db.global_get(key).expect("split op produced a value");

        // The log holds merged deltas only — far fewer records than ops.
        let recovered_log = recover(dir.path()).unwrap();
        assert!(
            recovered_log.records.len() <= 1,
            "{kind}: expected at most one merged-delta record, got {}",
            recovered_log.records.len()
        );

        let fresh = OccEngine::new(1, 16);
        recover_into(&fresh, dir.path()).unwrap();
        assert_eq!(
            fresh.global_get(key),
            Some(live),
            "{kind} must replay to the reconciled value"
        );
    }
}

/// The issue's acceptance check, on the real INCR workload: with the hot
/// counter split, durable Doppel performs O(operations) slice updates but
/// logs only O(split keys) records per reconciliation — `log_records` must be
/// a small fraction of `slice_ops`, and the recovered counter must equal the
/// committed count.
#[test]
fn incr_workload_logs_far_fewer_records_than_slice_ops() {
    use doppel_workloads::driver::Workload;
    use doppel_workloads::incr::Incr1Workload;

    let dir = TempWalDir::new("incr-counters");
    let wal = Arc::new(Wal::open(dir.path(), DurabilityConfig::default()).unwrap());
    let db = DoppelDb::new(doppel_common::DoppelConfig {
        workers: 1,
        unsplit_write_fraction: 0.0,
        ..Default::default()
    });
    db.attach_commit_sink(wal.clone());
    let hot = Key::raw(0); // Incr1Workload's hot key (rotation disabled)
    db.label_split(hot, OpKind::Add);
    let workload = Incr1Workload::new(64, 1.0);
    workload.load(&db);
    let mut generator = workload.generator(0, 42);
    let mut w = db.handle(0);

    // Three phase cycles, each dominated by split-phase increments.
    for _ in 0..3 {
        for _ in 0..10 {
            assert!(w.execute(generator.next_txn().proc).is_committed());
        }
        db.request_phase(Phase::Split);
        w.safepoint();
        for _ in 0..200 {
            assert!(w.execute(generator.next_txn().proc).is_committed());
        }
        db.request_phase(Phase::Joined);
        w.safepoint();
    }
    drop(w);
    db.shutdown();

    let stats = db.stats();
    assert!(stats.slice_ops >= 600, "split phases must dominate: {stats:?}");
    assert!(
        stats.log_records * 10 <= stats.slice_ops,
        "log_records ({}) must be \u{226a} slice_ops ({})",
        stats.log_records,
        stats.slice_ops
    );

    // And nothing was lost: the recovered hot counter equals its live value.
    let live = db.global_get(hot);
    drop(db);
    let fresh = OccEngine::new(1, 16);
    recover_into(&fresh, dir.path()).unwrap();
    assert_eq!(fresh.global_get(hot), live);
}

/// Checkpoint + tail replay: recovery prefers the newest checkpoint and
/// replays only records logged after it.
#[test]
fn checkpoint_plus_log_tail_recovers() {
    let dir = TempWalDir::new("ckpt-tail");
    let wal = Arc::new(Wal::open(dir.path(), DurabilityConfig::synchronous()).unwrap());
    let engine = OccEngine::new(1, 16);
    engine.attach_commit_sink(wal.clone());
    let mut h = engine.handle(0);
    let incr = |n: i64| {
        Arc::new(ProcedureFn::new("incr", move |tx: &mut dyn Tx| tx.add(Key::raw(1), n)))
    };
    for _ in 0..10 {
        assert!(h.execute(incr(1)).is_committed());
    }
    doppel_wal::checkpoint_engine(&wal, &engine).unwrap();
    for _ in 0..5 {
        assert!(h.execute(incr(2)).is_committed());
    }
    drop(h);
    engine.shutdown();
    drop(engine);

    let fresh = OccEngine::new(1, 16);
    let report = recover_into(&fresh, dir.path()).unwrap();
    assert_eq!(report.checkpoint_records, 1);
    assert_eq!(report.commit_records, 5, "only the tail is replayed");
    assert_eq!(fresh.global_get(Key::raw(1)), Some(Value::Int(20)));
    assert_eq!(fresh.stats().recovered_txns, 5);
}
