//! Registered-procedure equivalence: invoking a RUBiS transaction through
//! the [`doppel_common::ProcRegistry`] (the networked path: typed `Args`
//! through the registry dispatch) must leave the store in exactly the same
//! final state as executing the original closure-style procedure — for every
//! engine and for both transaction styles.
//!
//! Also fuzzes the `Args`/`ProcResult` codec: arbitrary argument vectors
//! must round-trip byte-exactly, and truncated encodings must fail with
//! typed errors.

use doppel_bench::engines::{build_engine, EngineKind, EngineParams};
use doppel_common::{ArgValue, Args, Engine, Key, Outcome, Procedure, Value};
use doppel_rubis::procs::{args as rubis_args, rubis_registry, RubisProcs};
use doppel_rubis::txns::{RegisterUser, StoreBid, StoreBuyNow, StoreComment, StoreItem};
use doppel_rubis::{RubisData, RubisScale, TxnStyle};
use doppel_wal::codec::{decode_args, encode_args, Dec};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- generators

const USERS: u64 = 20;
const ITEMS: u64 = 6;
const CATEGORIES: u64 = 3;
const REGIONS: u64 = 2;

fn scale() -> RubisScale {
    RubisScale { users: USERS, items: ITEMS, categories: CATEGORIES, regions: REGIONS }
}

/// One RUBiS write transaction, small id spaces so streams collide on the
/// contended auction metadata.
#[derive(Clone, Debug)]
enum RubisOp {
    Bid { item: u64, bidder: u64, amount: i64 },
    Comment { author: u64, about: u64, item: u64, rating: i64 },
    Register { region: u64 },
    NewItem { seller: u64, category: u64, region: u64, price: i64 },
    BuyNow { item: u64, buyer: u64 },
}

fn arb_stream() -> impl Strategy<Value = (Vec<RubisOp>, bool)> {
    let op = (0u8..8, 0u64..USERS, 0u64..USERS, 0u64..ITEMS, 1i64..5_000).prop_map(
        |(kind, a, b, item, n)| match kind {
            // Bids dominate, as in RUBiS-C.
            0..=3 => RubisOp::Bid { item, bidder: a, amount: 100 + n },
            4 => RubisOp::Comment { author: a, about: b, item, rating: n % 6 - 1 },
            5 => RubisOp::Register { region: a % REGIONS },
            6 => RubisOp::NewItem {
                seller: a,
                category: b % CATEGORIES,
                region: a % REGIONS,
                price: 100 + n,
            },
            _ => RubisOp::BuyNow { item, buyer: b },
        },
    );
    (prop::collection::vec(op, 0..60), any::<bool>())
}

/// The closure-style procedure for op `i` of a stream.
fn closure_proc(op: &RubisOp, i: usize, style: TxnStyle) -> Arc<dyn Procedure> {
    let id = (1u64 << 40) | i as u64;
    let clock = i as i64;
    match op.clone() {
        RubisOp::Bid { item, bidder, amount } => {
            Arc::new(StoreBid { bid_id: id, bidder, item, amount, now: clock, style })
        }
        RubisOp::Comment { author, about, item, rating } => Arc::new(StoreComment {
            comment_id: id,
            author,
            about_user: about,
            item,
            rating,
            text: "prop".into(),
            style,
        }),
        RubisOp::Register { region } => Arc::new(RegisterUser {
            user_id: id,
            nickname: format!("prop-{i}"),
            region,
            now: clock,
        }),
        RubisOp::NewItem { seller, category, region, price } => Arc::new(StoreItem {
            item_id: id,
            seller,
            category,
            region,
            name: format!("item-{i}"),
            initial_price: price,
            end_date: clock + 1_000_000,
            style,
        }),
        RubisOp::BuyNow { item, buyer } => {
            Arc::new(StoreBuyNow { buy_now_id: id, item, buyer, quantity: 1, now: clock })
        }
    }
}

/// The registered-procedure invocation for op `i` of the same stream.
fn registered_call(op: &RubisOp, i: usize, style: TxnStyle, procs: &RubisProcs) -> (doppel_common::ProcId, Args) {
    let id = (1u64 << 40) | i as u64;
    let clock = i as i64;
    match op.clone() {
        RubisOp::Bid { item, bidder, amount } => {
            (procs.store_bid, rubis_args::store_bid(id, bidder, item, amount, clock, style))
        }
        RubisOp::Comment { author, about, item, rating } => (
            procs.store_comment,
            rubis_args::store_comment(id, author, about, item, rating, "prop", style),
        ),
        RubisOp::Register { region } => (
            procs.register_user,
            rubis_args::register_user(id, &format!("prop-{i}"), region, clock),
        ),
        RubisOp::NewItem { seller, category, region, price } => (
            procs.store_item,
            rubis_args::store_item(
                id,
                seller,
                category,
                region,
                &format!("item-{i}"),
                price,
                clock + 1_000_000,
                style,
            ),
        ),
        RubisOp::BuyNow { item, buyer } => {
            (procs.store_buy_now, rubis_args::store_buy_now(id, item, buyer, 1, clock))
        }
    }
}

// ----------------------------------------------------------------- execution

/// Executes one procedure to completion on a direct handle (retrying
/// retryable aborts, driving stash replays through safepoints).
fn execute_to_completion(handle: &mut dyn doppel_common::TxHandle, proc: Arc<dyn Procedure>) {
    let mut attempts = 0;
    loop {
        match handle.execute(Arc::clone(&proc)) {
            Outcome::Committed(_) => return,
            Outcome::Aborted(e) if e.is_retryable() && attempts < 1_000 => attempts += 1,
            Outcome::Aborted(e) => panic!("execution aborted: {e}"),
            Outcome::Stashed(_) => {
                let deadline = Instant::now() + Duration::from_secs(10);
                loop {
                    handle.safepoint();
                    let completions = handle.take_completions();
                    if !completions.is_empty() {
                        assert!(completions[0].result.is_ok(), "stash replay aborted");
                        return;
                    }
                    assert!(Instant::now() < deadline, "stash never replayed");
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }
}

/// Full-store snapshot for exact comparison.
fn snapshot(engine: &dyn Engine) -> BTreeMap<Key, Value> {
    let mut map = BTreeMap::new();
    engine.for_each_record(&mut |k, v| {
        map.insert(k, v.clone());
    });
    map
}

fn run_closure_path(engine: &dyn Engine, ops: &[RubisOp], style: TxnStyle) -> BTreeMap<Key, Value> {
    RubisData::new(scale()).load(engine);
    let mut handle = engine.handle(0);
    for (i, op) in ops.iter().enumerate() {
        execute_to_completion(handle.as_mut(), closure_proc(op, i, style));
    }
    drop(handle);
    engine.shutdown();
    snapshot(engine)
}

fn run_proc_path(engine: &dyn Engine, ops: &[RubisOp], style: TxnStyle) -> BTreeMap<Key, Value> {
    RubisData::new(scale()).load(engine);
    let registry = rubis_registry();
    let procs = RubisProcs::resolve(&registry);
    let mut handle = engine.handle(0);
    for (i, op) in ops.iter().enumerate() {
        let (proc, args) = registered_call(op, i, style, &procs);
        execute_to_completion(handle.as_mut(), registry.call(proc, args));
    }
    drop(handle);
    engine.shutdown();
    // Every execution attempt was counted by the registry.
    let invocations: u64 = registry.stats().iter().map(|s| s.invocations).sum();
    assert!(invocations >= ops.len() as u64, "registry missed invocations");
    snapshot(engine)
}

proptest! {
    /// The same RUBiS stream through the registered-procedure path and the
    /// closure path yields identical final stores on all four engines, in
    /// both transaction styles.
    #[test]
    fn proc_path_equals_closure_path_on_all_engines((ops, doppel_style) in arb_stream()) {
        let style = if doppel_style { TxnStyle::Doppel } else { TxnStyle::Classic };
        let params = EngineParams { workers: 1, shards: 64, ..EngineParams::default() };
        for kind in EngineKind::ALL {
            let closure_engine = build_engine(*kind, &params);
            let via_closures = run_closure_path(closure_engine.as_ref(), &ops, style);

            let proc_engine = build_engine(*kind, &params);
            let via_procs = run_proc_path(proc_engine.as_ref(), &ops, style);

            prop_assert_eq!(
                &via_procs, &via_closures,
                "{} [{:?}]: registered-procedure path diverged from closure path",
                kind.label(), style
            );
        }
    }
}

// -------------------------------------------------------------- codec fuzzing

fn arb_arg() -> impl Strategy<Value = ArgValue> {
    (0u8..6, any::<i64>(), 0u64..1u64 << 40, 0usize..24).prop_map(|(kind, n, id, len)| match kind {
        0 => ArgValue::Int(n),
        1 => ArgValue::Key(Key::raw(id)),
        2 => ArgValue::Value(Value::Int(n)),
        3 => ArgValue::Value(Value::Set((0..len as i64).map(|e| e.wrapping_add(n)).collect())),
        4 => ArgValue::Bytes(n.to_le_bytes().repeat(len.max(1) % 8 + 1).into()),
        _ => ArgValue::Str(format!("s{n:x}-{id}")),
    })
}

proptest! {
    /// Arbitrary argument vectors round-trip byte-exactly through the wire
    /// codec.
    #[test]
    fn args_codec_roundtrips(vals in prop::collection::vec(arb_arg(), 0..16)) {
        let args = Args::from_vec(vals);
        let mut buf = Vec::new();
        encode_args(&mut buf, &args);
        let mut d = Dec::new(&buf);
        let back = decode_args(&mut d).expect("well-formed encoding decodes");
        prop_assert!(d.is_done(), "decode must consume the whole encoding");
        prop_assert_eq!(back, args);
    }

    /// Every strict prefix of an encoding fails with a typed error — never a
    /// panic, never a silent partial decode.
    #[test]
    fn truncated_args_encodings_error(vals in prop::collection::vec(arb_arg(), 1..8)) {
        let args = Args::from_vec(vals);
        let mut buf = Vec::new();
        encode_args(&mut buf, &args);
        for cut in 0..buf.len() {
            let mut d = Dec::new(&buf[..cut]);
            if let Ok(decoded) = decode_args(&mut d) {
                // A prefix may decode only if the cursor consumed everything
                // and the result is a strict prefix situation impossible
                // here: the element count is fixed up front, so any cut
                // drops bytes some element needs.
                prop_assert!(false, "prefix of length {} decoded as {:?}", cut, decoded);
            }
        }
    }
}
