//! End-to-end tests of the TCP front-end: a real `Server` on an ephemeral
//! localhost port driven through `RemoteClient` over actual sockets —
//! raw statement lists (`Submit`) and registered procedures (`InvokeProc`).

use doppel_common::{Args, Key, Op, Value};
use doppel_rubis::procs::args as rubis_args;
use doppel_rubis::{rubis_registry, RubisData, RubisScale, TxnStyle};
use doppel_service::{
    kv_registry, RemoteClient, RemoteOutcome, RemoteTxn, Server, ServerEngine, ServiceConfig,
    WireAbort,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_server(engine: &str, workers: usize, phase_ms: u64) -> Server {
    let engine = ServerEngine::build(engine, workers, phase_ms, 256).expect("known engine");
    Server::start(engine, ServiceConfig::default(), "127.0.0.1:0").expect("bind ephemeral port")
}

#[test]
fn occ_roundtrip_over_tcp() {
    let server = start_server("occ", 2, 20);
    let mut client = RemoteClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();

    // Create, increment, read back — all through the wire.
    let put = RemoteTxn::new().put(Key::raw(1), Value::Int(10));
    assert!(client.execute(&put).unwrap().is_committed());
    for _ in 0..5 {
        let incr = RemoteTxn::new().add(Key::raw(1), 7);
        assert!(client.execute(&incr).unwrap().is_committed());
    }
    let read = RemoteTxn::new().get(Key::raw(1)).get(Key::raw(999));
    match client.execute(&read).unwrap() {
        RemoteOutcome::Committed { values, .. } => {
            assert_eq!(values, vec![Some(Value::Int(45)), None]);
        }
        other => panic!("read failed: {other:?}"),
    }
    // The server-side store agrees.
    assert_eq!(server.service().engine().global_get(Key::raw(1)), Some(Value::Int(45)));
    server.shutdown();
}

#[test]
fn doppel_split_increments_and_stash_deferred_reads_over_tcp() {
    // The acceptance scenario: a doppel-server serving a client that commits
    // splittable increments, reads them back after a phase transition, and
    // observes stash-deferred completions replayed correctly.
    let server = start_server("doppel", 2, 5);
    let mut client = RemoteClient::connect(server.local_addr()).unwrap();

    let key = Key::raw(42);
    client.label_split(key, Op::Add(0)).unwrap();

    // Commit splittable increments; during split phases these go to
    // per-core slices.
    let mut committed = 0i64;
    for _ in 0..60 {
        match client.execute(&RemoteTxn::new().add(key, 1)).unwrap() {
            RemoteOutcome::Committed { .. } => committed += 1,
            RemoteOutcome::Aborted { code, .. } => panic!("increment aborted: {code:?}"),
            RemoteOutcome::Rejected { .. } => panic!("increment rejected"),
        }
    }
    assert_eq!(committed, 60);

    // Read the counter back. The client is synchronous, so every increment
    // completed before this read: whether the read lands in a joined phase
    // (post-reconciliation) or a split phase (stash-deferred, replayed after
    // the next reconciliation), it must observe the full count.
    let mut observed_deferred = false;
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let id = client.submit(&RemoteTxn::new().get(key)).unwrap();
        match client.wait(id).unwrap() {
            RemoteOutcome::Committed { values, deferred, .. } => {
                assert_eq!(
                    values,
                    vec![Some(Value::Int(committed))],
                    "a committed read must see every committed increment"
                );
                assert_eq!(deferred, client.was_deferred(id));
                observed_deferred |= deferred;
                // Stop once the run has demonstrated both halves of the
                // split-phase machinery: a stash-deferred read and
                // slice-absorbed increments.
                if observed_deferred && server.service().stats().slice_ops > 0 {
                    break;
                }
            }
            other => panic!("read failed: {other:?}"),
        }
        if Instant::now() >= deadline {
            break;
        }
        // Keep the key hot so it stays split, then probe again: sooner or
        // later a read lands inside a split phase and gets stashed. Under a
        // loaded machine a split phase can pass with zero writes, which
        // unsplits the key (classifier rule 1) — re-assert the label so the
        // machinery cannot go quiet for the rest of the test.
        client.label_split(key, Op::Add(0)).unwrap();
        for _ in 0..4 {
            match client.execute(&RemoteTxn::new().add(key, 1)).unwrap() {
                RemoteOutcome::Committed { .. } => committed += 1,
                other => panic!("increment failed: {other:?}"),
            }
        }
    }
    assert!(
        observed_deferred,
        "no read was stash-deferred within the deadline (split phases never hit a read?)"
    );

    // The server's engine saw real split-phase traffic.
    let stats = server.service().stats();
    assert!(stats.slice_ops > 0, "increments should have used per-core slices");
    assert!(stats.stashes > 0, "the deferred read was stashed");
    server.shutdown();
    assert_eq!(
        server.service().engine().global_get(key),
        Some(Value::Int(committed)),
        "drain must reconcile every slice"
    );
}

#[test]
fn kv_procs_and_unknown_names_over_tcp() {
    let engine = ServerEngine::build("occ", 2, 20, 256).unwrap().with_procs(kv_registry());
    let server = Server::start(engine, ServiceConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = RemoteClient::connect(server.local_addr()).unwrap();

    // Typed invocations: put, add, then a get whose result comes back as a
    // ProcResult.
    let put = client
        .call("kv.put", Args::new().key(Key::raw(9)).value(Value::Int(5)))
        .unwrap();
    assert!(put.is_committed());
    for _ in 0..3 {
        assert!(client.call("kv.add", Args::new().key(Key::raw(9)).int(2)).unwrap().is_committed());
    }
    let get = client.call("kv.get", Args::new().key(Key::raw(9))).unwrap();
    let result = get.proc_result().expect("kv.get returns a result");
    assert_eq!(result.get_value(0).unwrap(), &Value::Int(11));

    // Unknown names and malformed argument vectors abort with typed codes.
    match client.call("kv.not_registered", Args::new()).unwrap() {
        RemoteOutcome::Aborted { code: WireAbort::UnknownProc, .. } => {}
        other => panic!("expected UnknownProc, got {other:?}"),
    }
    match client.call("kv.add", Args::new().key(Key::raw(9))).unwrap() {
        RemoteOutcome::Aborted { code: WireAbort::UserAbort, .. } => {}
        other => panic!("expected a UserAbort for missing args, got {other:?}"),
    }

    // Raw statement lists keep working next to procedures on one connection.
    match client.execute(&RemoteTxn::new().get(Key::raw(9))).unwrap() {
        RemoteOutcome::Committed { values, .. } => assert_eq!(values, vec![Some(Value::Int(11))]),
        other => panic!("raw Submit failed: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn rubis_bidding_mix_over_tcp_with_pipelined_batches() {
    // The acceptance scenario: RUBiS bids run end-to-end over TCP via
    // InvokeProc (read-dependent StoreBid logic cannot ship as a raw
    // statement list), pipelined with submit_batch, with per-procedure
    // statistics maintained server-side.
    let registry = rubis_registry();
    let engine =
        ServerEngine::build("doppel", 2, 5, 256).unwrap().with_procs(Arc::clone(&registry));
    RubisData::new(RubisScale::small()).load(engine.engine.as_ref());
    let server = Server::start(engine, ServiceConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = RemoteClient::connect(server.local_addr()).unwrap();

    let item = 3u64;
    let before = client.call("rubis.view_item", rubis_args::view_item(item)).unwrap();
    let before = before.proc_result().expect("aggregates").clone();
    let (start_max, start_bids) = (before.get_int(0).unwrap(), before.get_int(1).unwrap());

    // Pipeline a window of bids; retry the retryable aborts (concurrent
    // workers validating against hot auction metadata).
    let calls: Vec<(&str, Args)> = (0..30)
        .map(|i| {
            (
                "rubis.store_bid",
                rubis_args::store_bid(
                    (1 << 41) | i as u64,
                    i as u64 % 10,
                    item,
                    start_max + 1 + i as i64,
                    i as i64,
                    TxnStyle::Doppel,
                ),
            )
        })
        .collect();
    let ids = client.submit_batch(&calls).unwrap();
    assert_eq!(ids.len(), calls.len());
    let mut committed = 0i64;
    let mut retry = Vec::new();
    for (i, id) in ids.into_iter().enumerate() {
        match client.wait(id).unwrap() {
            RemoteOutcome::Committed { .. } => committed += 1,
            RemoteOutcome::Aborted { code, .. } if code.is_retryable() => retry.push(i),
            other => panic!("bid failed: {other:?}"),
        }
    }
    for i in retry {
        let (name, args) = &calls[i];
        loop {
            match client.call(name, args.clone()).unwrap() {
                RemoteOutcome::Committed { .. } => break,
                RemoteOutcome::Aborted { code, .. } if code.is_retryable() => continue,
                other => panic!("bid retry failed: {other:?}"),
            }
        }
        committed += 1;
    }
    assert_eq!(committed, 30);

    // The aggregates reflect every committed bid, read through the
    // procedure path.
    let after = client.call("rubis.view_item", rubis_args::view_item(item)).unwrap();
    let after = after.proc_result().expect("aggregates").clone();
    assert_eq!(after.get_int(1).unwrap() - start_bids, committed);
    assert_eq!(after.get_int(0).unwrap(), start_max + 30);

    server.shutdown();
    // Per-procedure statistics were maintained by the server's dispatch.
    let stats = registry.stats();
    let bids = stats.iter().find(|s| s.name == "rubis.store_bid").unwrap();
    assert!(bids.commits >= 30, "expected ≥30 committed bids, saw {}", bids.commits);
    let views = stats.iter().find(|s| s.name == "rubis.view_item").unwrap();
    assert_eq!(views.commits, 2);
}

#[test]
fn rejections_after_shutdown_and_multiple_clients() {
    let server = start_server("atomic", 2, 20);
    let addr = server.local_addr();

    // Two concurrent clients share the service.
    let mut a = RemoteClient::connect(addr).unwrap();
    let mut b = RemoteClient::connect(addr).unwrap();
    for _ in 0..10 {
        assert!(a.execute(&RemoteTxn::new().add(Key::raw(5), 1)).unwrap().is_committed());
        assert!(b.execute(&RemoteTxn::new().add(Key::raw(5), 1)).unwrap().is_committed());
    }
    match a.execute(&RemoteTxn::new().get(Key::raw(5))).unwrap() {
        RemoteOutcome::Committed { values, .. } => assert_eq!(values, vec![Some(Value::Int(20))]),
        other => panic!("read failed: {other:?}"),
    }

    server.shutdown();
    // After shutdown the connection is closed (EOF) or submissions bounce
    // with a non-busy rejection; either way no hang and no commit.
    let result = a.execute(&RemoteTxn::new().add(Key::raw(5), 1));
    match result {
        Err(_) => {}
        Ok(RemoteOutcome::Rejected { busy }) => assert!(!busy),
        Ok(RemoteOutcome::Aborted { .. }) => {}
        Ok(RemoteOutcome::Committed { .. }) => panic!("commit after shutdown"),
    }
}
