//! Smoke test: every example in `examples/` must run to completion.
//!
//! `cargo test` builds all examples before running integration tests, so the
//! binaries are guaranteed to exist next to this test's own binary:
//! `target/<profile>/deps/examples_smoke-*` → `target/<profile>/examples/*`.

use std::path::PathBuf;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "leaderboard",
    "social_likes",
    "auction_bidding",
    "fraud_flags",
    "durable_counter",
    "remote_counter",
    "rubis_remote",
    "sharded_counter",
    "adaptive_tuner",
];

fn examples_dir() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary has a path");
    dir.pop(); // the test binary's file name
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.join("examples")
}

/// A full `cargo test` builds the examples as a side effect, but a filtered
/// `cargo test --test examples_smoke` does not — build them on demand so the
/// test works either way.
fn ensure_examples_built(dir: &std::path::Path) {
    if EXAMPLES.iter().all(|name| dir.join(name).exists()) {
        return;
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut cmd = Command::new(cargo);
    cmd.arg("build").arg("--examples");
    if !cfg!(debug_assertions) {
        cmd.arg("--release");
    }
    let status = cmd.status().expect("failed to spawn cargo build --examples");
    assert!(status.success(), "cargo build --examples failed with {status:?}");
}

#[test]
fn every_example_runs_to_completion() {
    let dir = examples_dir();
    ensure_examples_built(&dir);
    for name in EXAMPLES {
        let path = dir.join(name);
        assert!(
            path.exists(),
            "example binary {} not found — did an example get renamed without updating this list?",
            path.display()
        );
        let output = Command::new(&path)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn example {name}: {e}"));
        assert!(
            output.status.success(),
            "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}

/// The list above must stay in sync with the files in `examples/`.
#[test]
fn example_list_is_complete() {
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut on_disk: Vec<String> = std::fs::read_dir(manifest_dir.join("examples"))
        .expect("examples/ directory exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(listed, on_disk, "EXAMPLES list is out of sync with examples/*.rs");
}
