//! Cross-crate serializability tests.
//!
//! The core guarantee of the paper (§5.6) is that Doppel's phased execution is
//! serializable: the effect of the committed transactions equals some serial
//! order. For commutative counter workloads this has an easily checkable
//! consequence — every committed update is reflected in the final state
//! exactly once — which these tests verify under real multi-threaded
//! execution with the automatic coordinator flipping phases underneath.

use doppel_common::{DoppelConfig, Engine, Key, Outcome, ProcedureFn, TxError, Value};
use doppel_db::DoppelDb;
use std::sync::Arc;
use std::time::Duration;

fn contended_config(workers: usize) -> DoppelConfig {
    DoppelConfig {
        workers,
        phase_len: Duration::from_millis(3),
        split_min_conflicts: 2,
        split_conflict_fraction: 0.0,
        unsplit_write_fraction: 0.0,
        ..DoppelConfig::default()
    }
}

/// Every committed `Add` is reflected exactly once, across many phase cycles.
#[test]
fn concurrent_adds_sum_to_committed_count() {
    let workers = 3;
    let keys = 4u64;
    let db = Arc::new(DoppelDb::start(contended_config(workers)));
    for k in 0..keys {
        db.load(Key::raw(k), Value::Int(0));
    }
    // Label one key split up front so phase cycling (and the slice fast path)
    // is exercised deterministically even when the time-sliced workers happen
    // not to conflict; the other keys are left to automatic classification.
    db.label_split(Key::raw(0), doppel_common::OpKind::Add);
    // A fixed iteration count alone is not enough to see phase cycling: on a
    // fast (or lightly loaded) machine all the commits can land inside the
    // first joined phase. Each worker therefore also keeps committing for a
    // multiple of the phase length, so the coordinator provably flips phases
    // under the workload; the exactly-once bookkeeping covers every commit
    // either way.
    let per_thread = 4_000;
    let min_run = Duration::from_millis(30);
    let mut handles = Vec::new();
    for core in 0..workers {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let mut worker = db.handle(core);
            let mut per_key = vec![0i64; keys as usize];
            let mut committed = 0;
            let mut i = 0u64;
            while committed < per_thread || start.elapsed() < min_run {
                i += 1;
                let key = i % keys;
                let amount = (i % 7) as i64 + 1;
                let proc = Arc::new(ProcedureFn::new("add", move |tx| {
                    tx.add(Key::raw(key), amount)
                }));
                match worker.execute(proc) {
                    Outcome::Committed(_) => {
                        per_key[key as usize] += amount;
                        committed += 1;
                    }
                    Outcome::Aborted(TxError::Shutdown) => break,
                    Outcome::Aborted(_) => {}
                    Outcome::Stashed(_) => unreachable!("adds never stash"),
                }
            }
            per_key
        }));
    }
    let mut expected = vec![0i64; keys as usize];
    for h in handles {
        for (k, v) in h.join().unwrap().into_iter().enumerate() {
            expected[k] += v;
        }
    }
    db.shutdown();
    for k in 0..keys {
        assert_eq!(
            db.global_get(Key::raw(k)).unwrap().as_int().unwrap(),
            expected[k as usize],
            "key {k}: committed adds must be reflected exactly once"
        );
    }
    // The split machinery must actually have been exercised.
    assert!(db.stats().split_phases > 0, "the run should have cycled through split phases");
    assert!(db.stats().slice_ops > 0, "some adds should have used per-core slices");
}

/// Max updates commute: the final value equals the maximum of the committed
/// arguments even when they were applied through per-core slices.
#[test]
fn concurrent_maxes_keep_global_maximum() {
    let workers = 3;
    let db = Arc::new(DoppelDb::start(contended_config(workers)));
    let key = Key::raw(0);
    db.load(key, Value::Int(0));
    let per_thread = 3_000u64;
    let mut handles = Vec::new();
    for core in 0..workers {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut worker = db.handle(core);
            let mut max_committed = 0i64;
            let mut committed = 0;
            let mut x = (core as u64 + 1) * 0x9E37_79B9;
            while committed < per_thread {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let val = (x % 1_000_000) as i64;
                let proc = Arc::new(ProcedureFn::new("max", move |tx| tx.max(key, val)));
                match worker.execute(proc) {
                    Outcome::Committed(_) => {
                        max_committed = max_committed.max(val);
                        committed += 1;
                    }
                    Outcome::Aborted(TxError::Shutdown) => break,
                    Outcome::Aborted(_) => {}
                    Outcome::Stashed(_) => unreachable!(),
                }
            }
            max_committed
        }));
    }
    let expected: i64 = handles.into_iter().map(|h| h.join().unwrap()).max().unwrap();
    db.shutdown();
    assert_eq!(db.global_get(key).unwrap().as_int().unwrap(), expected);
}

/// Multi-record transactions stay atomic across phases: a transfer-like
/// transaction keeps the sum of two records invariant no matter how phases
/// interleave.
#[test]
fn multi_record_invariant_preserved() {
    let workers = 3;
    let db = Arc::new(DoppelDb::start(contended_config(workers)));
    let a = Key::raw(100);
    let b = Key::raw(101);
    db.load(a, Value::Int(10_000));
    db.load(b, Value::Int(10_000));
    let per_thread = 3_000;
    let mut handles = Vec::new();
    for core in 0..workers {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut worker = db.handle(core);
            let mut committed = 0;
            let mut i = 0i64;
            while committed < per_thread {
                i += 1;
                let delta = (i % 13) - 6;
                // Move `delta` from a to b: the sum a+b is invariant.
                let proc = Arc::new(ProcedureFn::new("transfer", move |tx| {
                    tx.add(a, -delta)?;
                    tx.add(b, delta)
                }));
                match worker.execute(proc) {
                    Outcome::Committed(_) => committed += 1,
                    Outcome::Aborted(TxError::Shutdown) => break,
                    Outcome::Aborted(_) => {}
                    Outcome::Stashed(_) => unreachable!(),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    db.shutdown();
    let sum = db.global_get(a).unwrap().as_int().unwrap()
        + db.global_get(b).unwrap().as_int().unwrap();
    assert_eq!(sum, 20_000, "transfers must preserve the total");
}

/// Reads of split data are stashed and eventually observe a value that
/// reflects a prefix of the committed writes (never a torn or partial one).
#[test]
fn stashed_reads_observe_consistent_counter() {
    let workers = 2;
    let db = Arc::new(DoppelDb::start(contended_config(workers)));
    let hot = Key::raw(7);
    db.load(hot, Value::Int(0));

    // Writer thread: hammers the counter with +2 increments; the counter must
    // therefore always read as an even number.
    let writer_db = Arc::clone(&db);
    let writer = std::thread::spawn(move || {
        let mut worker = writer_db.handle(0);
        let mut committed = 0;
        while committed < 20_000 {
            let proc = Arc::new(ProcedureFn::new("add2", move |tx| tx.add(hot, 2)));
            match worker.execute(proc) {
                Outcome::Committed(_) => committed += 1,
                Outcome::Aborted(TxError::Shutdown) => break,
                _ => {}
            }
        }
        committed
    });

    // Reader thread: reads the counter; during split phases the reads are
    // stashed and complete later, but every observed value must be even.
    let reader_db = Arc::clone(&db);
    let reader = std::thread::spawn(move || {
        let mut worker = reader_db.handle(1);
        let observed = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut submitted = 0;
        while submitted < 2_000 {
            let sink = Arc::clone(&observed);
            let proc = Arc::new(ProcedureFn::read_only("read", move |tx| {
                let v = tx.get_int(Key::raw(7))?;
                sink.lock().unwrap().push(v);
                Ok(())
            }));
            match worker.execute(proc) {
                Outcome::Committed(_) | Outcome::Stashed(_) => submitted += 1,
                Outcome::Aborted(TxError::Shutdown) => break,
                Outcome::Aborted(_) => {}
            }
            worker.take_completions();
        }
        // Drain any remaining stashed reads by passing safepoints until the
        // stash is empty or shutdown.
        for _ in 0..1_000 {
            worker.safepoint();
            worker.take_completions();
            if worker.stash_len() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let data = observed.lock().unwrap().clone();
        data
    });

    let committed_writes = writer.join().unwrap();
    let observations = reader.join().unwrap();
    db.shutdown();

    assert!(committed_writes > 0);
    assert!(!observations.is_empty(), "the reader should have observed values");
    for v in &observations {
        assert!(v % 2 == 0, "observed value {v} would expose a half-applied state");
    }
    assert_eq!(
        db.global_get(hot).unwrap().as_int().unwrap(),
        committed_writes * 2
    );
}
