//! End-to-end tests of the phase reconciliation machinery: manual phase
//! control, automatic classification, stashing, reconciliation, and the
//! feedback behaviours described in §5.4–§5.5 of the paper.

use doppel_common::{
    DoppelConfig, Engine, Key, OpKind, OrderKey, Outcome, ProcedureFn, TxError, Value,
};
use doppel_db::{DoppelDb, Phase};
use std::sync::Arc;
use std::time::Duration;

fn manual_db(workers: usize) -> DoppelDb {
    DoppelDb::new(DoppelConfig {
        workers,
        split_min_conflicts: 1,
        split_conflict_fraction: 0.0,
        unsplit_write_fraction: 0.0,
        ..DoppelConfig::default()
    })
}

/// Drives a full joined → split → joined cycle by hand and checks each
/// intermediate state, including that the split-phase writes are invisible
/// until reconciliation.
#[test]
fn manual_phase_cycle_with_all_splittable_operations() {
    let db = manual_db(1);
    let counter = Key::raw(1);
    let maximum = Key::raw(2);
    let minimum = Key::raw(3);
    let board = Key::raw(4);
    let slot = Key::raw(5);
    db.load(counter, Value::Int(10));
    db.load(maximum, Value::Int(100));
    db.load(minimum, Value::Int(100));
    db.label_split(counter, OpKind::Add);
    db.label_split(maximum, OpKind::Max);
    db.label_split(minimum, OpKind::Min);
    db.label_split(board, OpKind::TopKInsert);
    db.label_split(slot, OpKind::OPut);

    let mut w = db.handle(0);
    db.request_phase(Phase::Split);
    w.safepoint();
    assert_eq!(db.current_phase(), Phase::Split);
    assert_eq!(db.split_count(), 5);

    let writes = Arc::new(ProcedureFn::new("mixed", |tx| {
        tx.add(Key::raw(1), 5)?;
        tx.max(Key::raw(2), 250)?;
        tx.min(Key::raw(3), 7)?;
        tx.topk_insert(Key::raw(4), OrderKey::from(42), "player".into(), 4)?;
        tx.oput(Key::raw(5), OrderKey::from(9), "winner".into())
    }));
    for _ in 0..10 {
        assert!(w.execute(writes.clone()).is_committed());
    }

    // Nothing is visible in the global store yet: all updates sit in slices.
    assert_eq!(db.global_get(counter), Some(Value::Int(10)));
    assert_eq!(db.global_get(maximum), Some(Value::Int(100)));
    assert_eq!(db.global_get(board), None);

    db.request_phase(Phase::Joined);
    w.safepoint();

    assert_eq!(db.global_get(counter), Some(Value::Int(60)), "10 + 10×5");
    assert_eq!(db.global_get(maximum), Some(Value::Int(250)));
    assert_eq!(db.global_get(minimum), Some(Value::Int(7)));
    let board_val = db.global_get(board).unwrap();
    assert_eq!(board_val.as_topk().unwrap().len(), 1);
    let slot_val = db.global_get(slot).unwrap();
    assert_eq!(slot_val.as_tuple().unwrap().order, OrderKey::from(9));
    assert_eq!(db.stats().split_phases, 1);
    assert!(db.stats().slices_merged >= 4, "every touched slice must be merged");
}

/// A transaction that both writes split data and reads other split data is
/// stashed as a whole and replayed atomically.
#[test]
fn mixed_split_access_is_stashed_whole() {
    let db = manual_db(1);
    let a = Key::raw(1);
    let b = Key::raw(2);
    db.load(a, Value::Int(0));
    db.load(b, Value::Int(0));
    db.label_split(a, OpKind::Add);
    db.label_split(b, OpKind::Add);

    let mut w = db.handle(0);
    db.request_phase(Phase::Split);
    w.safepoint();

    // Writes the split key a (allowed) but also *reads* the split key b
    // (not allowed) — the whole transaction must be stashed, and the write to
    // a must not happen yet.
    let proc = Arc::new(ProcedureFn::new("mixed", |tx| {
        tx.add(Key::raw(1), 100)?;
        let v = tx.get_int(Key::raw(2))?;
        tx.add(Key::raw(1), v)
    }));
    let out = w.execute(proc);
    assert!(out.is_stashed());
    assert_eq!(w.stash_len(), 1);

    db.request_phase(Phase::Joined);
    w.safepoint();
    let completions = w.take_completions();
    assert_eq!(completions.len(), 1);
    assert!(completions[0].result.is_ok());
    // The replay ran once in the joined phase: a = 100 + b(=0).
    assert_eq!(db.global_get(a), Some(Value::Int(100)));
}

/// Multi-worker automatic run: contention on a hot key triggers automatic
/// splitting, and removing the contention triggers un-splitting (§5.5, the
/// behaviour behind Figure 10).
#[test]
fn automatic_split_and_unsplit_follow_contention() {
    let workers = 3;
    let db = Arc::new(DoppelDb::start(DoppelConfig {
        workers,
        phase_len: Duration::from_millis(3),
        split_min_conflicts: 2,
        split_conflict_fraction: 0.0,
        unsplit_write_fraction: 0.02,
        ..DoppelConfig::default()
    }));
    let hot = Key::raw(0);
    db.load(hot, Value::Int(0));
    for k in 1..=1000u64 {
        db.load(Key::raw(k), Value::Int(0));
    }

    // Phase 1: hammer the hot key from all workers.
    let mut handles = Vec::new();
    for core in 0..workers {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut w = db.handle(core);
            let proc = Arc::new(ProcedureFn::new("hot", move |tx| tx.add(hot, 1)));
            let mut committed = 0u64;
            while committed < 15_000 {
                match w.execute(proc.clone()) {
                    Outcome::Committed(_) => committed += 1,
                    Outcome::Aborted(TxError::Shutdown) => break,
                    _ => {}
                }
            }
            // Phase 2: switch to uniform cold traffic so the hot key stops
            // being written and gets un-split.
            let mut i = 0u64;
            let mut cold_committed = 0u64;
            while cold_committed < 15_000 {
                i += 1;
                let key = Key::raw(1 + (i * (core as u64 + 1)) % 1000);
                let proc = Arc::new(ProcedureFn::new("cold", move |tx| tx.add(key, 1)));
                match w.execute(proc) {
                    Outcome::Committed(_) => cold_committed += 1,
                    Outcome::Aborted(TxError::Shutdown) => break,
                    _ => {}
                }
            }
            committed
        }));
    }
    let hot_commits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    db.shutdown();

    let stats = db.stats();
    assert_eq!(
        db.global_get(hot).unwrap().as_int().unwrap() as u64,
        hot_commits,
        "hot-key increments survive splitting and reconciliation"
    );
    assert!(stats.total_splits >= 1, "the hot key should have been split at least once");
    assert!(
        stats.total_unsplits >= 1,
        "after the traffic moved away the hot key should have been moved back"
    );
    assert!(stats.slice_ops > 0, "some increments should have used the split fast path");
}

/// The ablation flag (`enable_splitting = false`) keeps Doppel correct while
/// never splitting, so any throughput difference in the benchmarks is
/// attributable to splitting itself.
#[test]
fn splitting_disabled_never_splits_under_contention() {
    let workers = 2;
    let db = Arc::new(DoppelDb::start(DoppelConfig {
        workers,
        phase_len: Duration::from_millis(3),
        enable_splitting: false,
        ..DoppelConfig::default()
    }));
    let hot = Key::raw(0);
    db.load(hot, Value::Int(0));
    let mut handles = Vec::new();
    for core in 0..workers {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut w = db.handle(core);
            let proc = Arc::new(ProcedureFn::new("hot", move |tx| tx.add(hot, 1)));
            let mut committed = 0u64;
            while committed < 10_000 {
                match w.execute(proc.clone()) {
                    Outcome::Committed(_) => committed += 1,
                    Outcome::Aborted(TxError::Shutdown) => break,
                    _ => {}
                }
            }
            committed
        }));
    }
    let commits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    db.shutdown();
    assert_eq!(db.global_get(hot).unwrap().as_int().unwrap() as u64, commits);
    assert_eq!(db.stats().total_splits, 0);
    assert_eq!(db.stats().slice_ops, 0);
}

/// Downgrade path 1 (§5.5): a key whose contention drops to zero moves
/// split → reconciled within a bounded number of phases. The classifier uses
/// write sampling during split phases, so a split key that stops being
/// written is detected the first time a phase with real traffic ends.
#[test]
fn cold_split_key_is_unsplit_within_bounded_phases() {
    const MAX_PHASES: usize = 3;
    let db = DoppelDb::new(DoppelConfig {
        workers: 1,
        split_min_conflicts: 1,
        split_conflict_fraction: 0.0,
        unsplit_write_fraction: 0.05,
        ..DoppelConfig::default()
    });
    let hot = Key::raw(0);
    db.load(hot, Value::Int(7));
    for k in 1..=64u64 {
        db.load(Key::raw(k), Value::Int(0));
    }
    db.label_split(hot, OpKind::Add);
    let mut w = db.handle(0);

    // The contention is gone: phases only carry uniform cold traffic.
    let mut phases = 0;
    while db.split_keys().iter().any(|(k, _)| *k == hot) {
        assert!(
            phases < MAX_PHASES,
            "cold key still split after {phases} full split phases"
        );
        db.request_phase(Phase::Split);
        w.safepoint();
        for i in 0..200u64 {
            let key = Key::raw(1 + i % 64);
            let proc = Arc::new(ProcedureFn::new("cold", move |tx| tx.add(key, 1)));
            assert!(w.execute(proc).is_committed());
        }
        db.request_phase(Phase::Joined);
        w.safepoint();
        phases += 1;
    }
    assert!(db.stats().total_unsplits >= 1);
    assert_eq!(db.global_get(hot), Some(Value::Int(7)), "unsplitting must not corrupt the value");
}

/// Downgrade path 2 (§5.5): a split key whose split-phase traffic is
/// dominated by *reads* (stashes) is moved back to reconciled — splitting
/// only pays off when the selected operation dominates.
#[test]
fn read_stash_heavy_key_is_unsplit() {
    let db = DoppelDb::new(DoppelConfig {
        workers: 1,
        split_min_conflicts: 1,
        split_conflict_fraction: 0.0,
        unsplit_write_fraction: 0.0,
        unsplit_stash_ratio: 2.0,
        ..DoppelConfig::default()
    });
    let key = Key::raw(1);
    db.load(key, Value::Int(0));
    db.label_split(key, OpKind::Add);
    let mut w = db.handle(0);

    db.request_phase(Phase::Split);
    w.safepoint();
    let write = Arc::new(ProcedureFn::new("add", move |tx| tx.add(Key::raw(1), 1)));
    let read = Arc::new(ProcedureFn::read_only("get", move |tx| tx.get(Key::raw(1)).map(|_| ())));
    for _ in 0..5 {
        assert!(w.execute(write.clone()).is_committed());
    }
    let mut stashed = 0;
    for _ in 0..40 {
        if w.execute(read.clone()).is_stashed() {
            stashed += 1;
        }
    }
    assert_eq!(stashed, 40, "reads of split data must be stashed");

    db.request_phase(Phase::Joined);
    w.safepoint();
    assert!(
        db.split_keys().is_empty(),
        "a read-dominated key must move back to reconciled"
    );
    assert!(db.stats().total_unsplits >= 1);
    // All stashed reads replayed; the writes survived reconciliation.
    assert_eq!(w.take_completions().len(), 40);
    assert_eq!(db.global_get(key), Some(Value::Int(5)));
}

/// Downgrade path 3 with the new operations: a stash-heavy key whose stashes
/// are a *different splittable* operation changes its assigned operation
/// instead of un-splitting ("the operation for key k might be Min in one
/// split phase, and Max in the next", §4) — here `BitOr` gives way to
/// `BoundedAdd`.
#[test]
fn stash_heavy_key_switches_assigned_op_between_new_ops() {
    let db = DoppelDb::new(DoppelConfig {
        workers: 1,
        split_min_conflicts: 1,
        split_conflict_fraction: 0.0,
        unsplit_write_fraction: 0.0,
        unsplit_stash_ratio: 1000.0,
        ..DoppelConfig::default()
    });
    let key = Key::raw(1);
    db.load(key, Value::Int(0));
    db.label_split(key, OpKind::BitOr);
    let mut w = db.handle(0);

    db.request_phase(Phase::Split);
    w.safepoint();
    let or = Arc::new(ProcedureFn::new("or", move |tx| tx.bit_or(Key::raw(1), 0b10)));
    let rate = Arc::new(ProcedureFn::new("rate", move |tx| tx.bounded_add(Key::raw(1), 1, 100)));
    // A few BitOr writes take the split fast path…
    for _ in 0..10 {
        assert!(w.execute(or.clone()).is_committed());
    }
    // …but the workload has shifted: BoundedAdd dominates and gets stashed.
    let mut stashed = 0;
    for _ in 0..30 {
        if w.execute(rate.clone()).is_stashed() {
            stashed += 1;
        }
    }
    assert_eq!(stashed, 30);

    db.request_phase(Phase::Joined);
    w.safepoint();
    // The BitOr slice reconciled first (0 | 0b10 = 2), then the 30 stashed
    // BoundedAdds replayed on top (2 + 30 = 32, under the bound), and the
    // classifier switched the selected operation.
    assert_eq!(db.global_get(key), Some(Value::Int(32)));
    assert_eq!(db.split_keys(), vec![(key, OpKind::BoundedAdd)]);

    // Next split phase: BoundedAdd takes the fast path, BitOr is stashed.
    db.request_phase(Phase::Split);
    w.safepoint();
    assert!(w.execute(rate).is_committed());
    assert!(w.execute(or).is_stashed());
}

/// Selected-operation switching: if a split key keeps being hit with a
/// different splittable operation, the classifier reassigns the selected
/// operation rather than un-splitting (§4 guideline 3).
#[test]
fn selected_operation_can_change_between_phases() {
    let db = DoppelDb::new(DoppelConfig {
        workers: 1,
        split_min_conflicts: 1,
        split_conflict_fraction: 0.0,
        unsplit_write_fraction: 0.0,
        unsplit_stash_ratio: 1000.0,
        ..DoppelConfig::default()
    });
    let key = Key::raw(1);
    db.load(key, Value::Int(0));
    db.label_split(key, OpKind::Max);
    let mut w = db.handle(0);

    // Split phase where the workload only issues Add: every Add is stashed.
    db.request_phase(Phase::Split);
    w.safepoint();
    let add = Arc::new(ProcedureFn::new("add", move |tx| tx.add(Key::raw(1), 1)));
    let mut stashed = 0;
    for _ in 0..50 {
        if w.execute(add.clone()).is_stashed() {
            stashed += 1;
        }
    }
    assert_eq!(stashed, 50);

    // Back to joined: the stashed Adds replay, and the classifier switches
    // the selected operation to Add for the next split phase.
    db.request_phase(Phase::Joined);
    w.safepoint();
    assert_eq!(db.global_get(key), Some(Value::Int(50)));
    assert_eq!(db.split_keys(), vec![(key, OpKind::Add)]);

    // Next split phase: Adds now take the split fast path.
    db.request_phase(Phase::Split);
    w.safepoint();
    assert!(w.execute(add).is_committed());
    assert!(db.stats().slice_ops >= 1);
}
