//! Differential test for the adaptive contention controller: the same
//! deterministic increment workload, run once with the tuner live (zero
//! manual hints) and once with an oracle labelling (every hot key split up
//! front), must leave byte-identical final stores.
//!
//! Splittable increments commute, so whatever the tuner decides — promote
//! late, demote early, steer the phase length, or do nothing at all on a
//! quiet host — the committed effects must survive every split/merge cycle
//! it causes. The workload migrates its hot set halfway through precisely
//! to make the controller act while transactions are in flight.

use doppel_common::{
    DoppelConfig, Engine, Key, OpKind, Outcome, ProcedureFn, TuneSink, TunerConfig, TxError, Value,
};
use doppel_db::DoppelDb;
use doppel_tuner::TunerHandle;
use std::sync::Arc;
use std::time::Duration;

const WORKERS: usize = 2;
/// Commits per thread per phase; divisible by the hot-set size so every
/// key in the set receives exactly the same number of increments.
const PER_PHASE: u64 = 4_000;
const FIRST: [u64; 2] = [3, 4];
const SECOND: [u64; 2] = [7_000, 7_001];

fn config() -> DoppelConfig {
    DoppelConfig {
        workers: WORKERS,
        phase_len: Duration::from_millis(5),
        tuner: TunerConfig {
            epoch: Duration::from_millis(20),
            promote_min_hits: 2,
            demote_idle_epochs: 2,
            ..TunerConfig::default()
        },
        ..DoppelConfig::default()
    }
}

/// Hammers `FIRST` and then `SECOND` from every worker, retrying until each
/// thread lands exactly `PER_PHASE` commits per phase, round-robin across
/// the set — so the final value of every hot key is exactly
/// `WORKERS * PER_PHASE / set.len()` no matter how execution interleaved.
fn drive(db: &Arc<DoppelDb>) {
    let mut threads = Vec::new();
    for core in 0..WORKERS {
        let db = Arc::clone(db);
        threads.push(std::thread::spawn(move || {
            let mut w = db.handle(core);
            for set in [FIRST, SECOND] {
                let mut committed = 0u64;
                loop {
                    let key = Key::raw(set[(committed % set.len() as u64) as usize]);
                    let proc = Arc::new(ProcedureFn::new("incr", move |tx| tx.add(key, 1)));
                    match w.execute(proc) {
                        Outcome::Committed(_) => {
                            committed += 1;
                            if committed == PER_PHASE {
                                break;
                            }
                        }
                        Outcome::Aborted(TxError::Shutdown) => return,
                        _ => {}
                    }
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
}

fn load(db: &DoppelDb) {
    for id in FIRST.iter().chain(&SECOND) {
        db.load(Key::raw(*id), Value::Int(0));
    }
}

fn final_store(db: &DoppelDb) -> Vec<(u64, Option<Value>)> {
    FIRST.iter().chain(&SECOND).map(|id| (*id, db.global_get(Key::raw(*id)))).collect()
}

#[test]
fn adaptive_and_oracle_runs_produce_identical_stores() {
    // Adaptive: no labels; the control loop watches telemetry and decides.
    let adaptive_db = Arc::new(DoppelDb::start(config()));
    load(&adaptive_db);
    let registry = adaptive_db.telemetry().expect("doppel always has a telemetry registry");
    let mut tuner = TunerHandle::spawn(
        adaptive_db.config().tuner.clone(),
        Arc::clone(&adaptive_db) as Arc<dyn TuneSink>,
        registry,
    );
    drive(&adaptive_db);
    let status = tuner.status();
    tuner.stop();
    adaptive_db.shutdown();

    assert!(status.epochs > 0, "the control loop must have ticked during the run");
    let cfg = config().tuner;
    assert!(
        status.phase_len >= cfg.min_phase_len && status.phase_len <= cfg.max_phase_len,
        "tuned phase length {:?} must respect the configured bounds",
        status.phase_len
    );

    // Oracle: every key that will ever be hot is labelled before the first
    // transaction — the upper bound a perfect manual hint could reach.
    let oracle_db = Arc::new(DoppelDb::start(config()));
    load(&oracle_db);
    for id in FIRST.iter().chain(&SECOND) {
        oracle_db.label_split(Key::raw(*id), OpKind::Add);
    }
    drive(&oracle_db);
    oracle_db.shutdown();

    // Both stores must hold the exact deterministic totals: increments
    // commute, so no tuner decision may lose or duplicate one.
    let expected = WORKERS as u64 * PER_PHASE / FIRST.len() as u64;
    let adaptive_store = final_store(&adaptive_db);
    let oracle_store = final_store(&oracle_db);
    for (id, value) in &adaptive_store {
        assert_eq!(
            value.as_ref().and_then(Value::as_int),
            Some(expected as i64),
            "adaptive run lost increments on key {id} (tuner decisions: {:?})",
            status.decisions
        );
    }
    assert_eq!(adaptive_store, oracle_store, "adaptive and oracle stores diverged");
}
