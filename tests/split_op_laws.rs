//! Property battery for the splittable-operation laws (§4).
//!
//! Every operation registered in the [`doppel_common::split_ops`] registry
//! must satisfy the laws Doppel's correctness argument (§5.6) rests on:
//!
//! * **commutativity**: applying a batch of operations of one kind in any
//!   order yields the same final value;
//! * **slice/merge equivalence**: folding the batch into per-core slices
//!   (any assignment of operations to cores) and merging the slices equals
//!   applying the batch directly;
//! * **merge-order independence**: the order in which workers reconcile
//!   their slices does not change the final record value.
//!
//! The tests enumerate the registry, so an operation registered tomorrow is
//! automatically subjected to the battery — forgetting to think about its
//! laws fails CI rather than silently corrupting split phases.

use doppel_common::{split_ops, IntSet, Op, OpKind, OrderKey, Value};
use doppel_db::Slice;
use proptest::prelude::*;
use std::collections::HashMap;

const CORES: usize = 4;

/// Raw material for one generated operation: interpreted per operation kind
/// so that a single generated sequence exercises every registered kind.
#[derive(Clone, Debug)]
struct Seed {
    arg: i64,
    aux: i64,
    core: usize,
}

fn arb_seeds() -> impl Strategy<Value = Vec<Seed>> {
    prop::collection::vec((-1_000i64..1_000, -1_000i64..1_000, 0usize..CORES), 1..40)
        .prop_map(|v| v.into_iter().map(|(arg, aux, core)| Seed { arg, aux, core }).collect())
}

/// Builds a concrete operation of `kind` from one seed.
fn make_op(kind: OpKind, s: &Seed) -> Op {
    match kind {
        OpKind::Max => Op::Max(s.arg),
        OpKind::Min => Op::Min(s.arg),
        OpKind::Add => Op::Add(s.arg),
        // Keep products within range so wrapping never masks a real bug.
        OpKind::Mult => Op::Mult(s.arg.rem_euclid(7)),
        OpKind::BitOr => Op::BitOr(s.arg & 0xFFFF),
        OpKind::BoundedAdd => Op::BoundedAdd { n: s.arg.rem_euclid(50), bound: 300 },
        OpKind::SetUnion => Op::SetUnion(IntSet::singleton(s.arg.rem_euclid(32))),
        OpKind::OPut => Op::OPut {
            order: OrderKey::pair(s.arg.rem_euclid(100), s.aux.rem_euclid(100)),
            core: s.core,
            payload: format!("{}/{}", s.arg, s.core).into_bytes().into(),
        },
        OpKind::TopKInsert => Op::TopKInsert {
            order: OrderKey::pair(s.arg.rem_euclid(100), s.aux.rem_euclid(100)),
            core: s.core,
            payload: format!("{}/{}", s.arg, s.core).into_bytes().into(),
            k: 5,
        },
        other => panic!("{other} is not a splittable kind"),
    }
}

/// The starting record value for a kind's compatibility class. Integer
/// records are pre-loaded (the benchmarks "pre-allocate all the records",
/// §8.1, and identity merges may legitimately skip creating absent records);
/// container records start absent to also exercise lazy creation.
fn initial_value(kind: OpKind, initial: i64) -> Option<Value> {
    match split_ops().get(kind).unwrap().value_kind() {
        doppel_common::ValueKind::Int => Some(Value::Int(initial)),
        _ => None,
    }
}

/// Applies `ops` in order through the global-store semantics.
fn apply_direct(initial: Option<Value>, ops: &[Op]) -> Option<Value> {
    let mut cur = initial;
    for op in ops {
        cur = Some(op.apply_to(cur.as_ref()).expect("laws battery uses type-correct ops"));
    }
    cur
}

/// Folds each op into its core's slice, then merges the slices in
/// `merge_order`.
fn apply_via_slices(
    initial: Option<Value>,
    kind: OpKind,
    ops_with_cores: &[(Op, usize)],
    merge_order: &[usize],
) -> Option<Value> {
    let mut slices: HashMap<usize, Slice> = HashMap::new();
    for (op, core) in ops_with_cores {
        slices.entry(*core).or_insert_with(|| Slice::new(kind)).apply(op).unwrap();
    }
    let mut cur = initial;
    for core in merge_order {
        if let Some(slice) = slices.remove(core) {
            for op in slice.into_merge_ops() {
                cur = Some(op.apply_to(cur.as_ref()).unwrap());
            }
        }
    }
    assert!(slices.is_empty(), "merge order must cover every core");
    cur
}

/// A deterministic permutation of `0..len` derived from `seed`
/// (Fisher–Yates over an xorshift stream).
fn permutation(len: usize, mut seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        perm.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    perm
}

proptest! {
    /// §4 guideline 1, for every registered operation: any permutation of a
    /// homogeneous batch yields the same final value.
    #[test]
    fn every_registered_op_commutes_with_itself(
        seeds in arb_seeds(),
        initial in -1_000i64..1_000,
        perm_seed in 1u64..u64::MAX,
    ) {
        for op_impl in split_ops().iter() {
            let kind = op_impl.kind();
            let ops: Vec<Op> = seeds.iter().map(|s| make_op(kind, s)).collect();
            let shuffled: Vec<Op> =
                permutation(ops.len(), perm_seed).into_iter().map(|i| ops[i].clone()).collect();
            let forward = apply_direct(initial_value(kind, initial), &ops);
            let permuted = apply_direct(initial_value(kind, initial), &shuffled);
            prop_assert_eq!(forward, permuted, "{} is not commutative", kind);
        }
    }

    /// The heart of §4, for every registered operation: folding a batch into
    /// per-core slices and merging the slices — in *any* merge order — equals
    /// applying the batch directly.
    #[test]
    fn slice_then_merge_is_schedule_independent(
        seeds in arb_seeds(),
        initial in -1_000i64..1_000,
        perm_seed in 1u64..u64::MAX,
    ) {
        for op_impl in split_ops().iter() {
            let kind = op_impl.kind();
            let ops_with_cores: Vec<(Op, usize)> =
                seeds.iter().map(|s| (make_op(kind, s), s.core)).collect();
            let direct = apply_direct(
                initial_value(kind, initial),
                &ops_with_cores.iter().map(|(op, _)| op.clone()).collect::<Vec<_>>(),
            );

            let forward_order: Vec<usize> = (0..CORES).collect();
            let reverse_order: Vec<usize> = (0..CORES).rev().collect();
            let random_order = permutation(CORES, perm_seed);
            for order in [&forward_order, &reverse_order, &random_order] {
                let merged =
                    apply_via_slices(initial_value(kind, initial), kind, &ops_with_cores, order);
                prop_assert_eq!(
                    &merged, &direct,
                    "{} slice/merge with merge order {:?} diverged from direct application",
                    kind, order
                );
            }
        }
    }

    /// Re-slicing the same batch under a *different* core assignment must
    /// also converge: the final value is independent of which core executed
    /// which operation.
    #[test]
    fn core_assignment_does_not_matter(
        seeds in arb_seeds(),
        initial in -1_000i64..1_000,
        perm_seed in 1u64..u64::MAX,
    ) {
        let order: Vec<usize> = (0..CORES).collect();
        for op_impl in split_ops().iter() {
            let kind = op_impl.kind();
            let assigned: Vec<(Op, usize)> =
                seeds.iter().map(|s| (make_op(kind, s), s.core)).collect();
            // Reassign every op to a core derived from the permutation seed.
            let reassigned: Vec<(Op, usize)> = assigned
                .iter()
                .enumerate()
                .map(|(i, (op, _))| {
                    (op.clone(), ((i as u64).wrapping_mul(perm_seed) % CORES as u64) as usize)
                })
                .collect();
            let a = apply_via_slices(initial_value(kind, initial), kind, &assigned, &order);
            let b = apply_via_slices(initial_value(kind, initial), kind, &reassigned, &order);
            prop_assert_eq!(a, b, "{} result depends on the core assignment", kind);
        }
    }
}

/// The battery above only means something if it really covers the whole
/// registry — pin the registered kinds so a new operation extends this file's
/// `make_op` (compile-time reminder via the panic arm) and these tests.
#[test]
fn battery_covers_the_whole_registry() {
    let kinds: Vec<OpKind> = split_ops().iter().map(|o| o.kind()).collect();
    assert_eq!(kinds.len(), 9);
    for kind in &kinds {
        // make_op must be able to build every registered kind.
        let op = make_op(*kind, &Seed { arg: 1, aux: 2, core: 0 });
        assert_eq!(op.kind(), *kind);
    }
}
