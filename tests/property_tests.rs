//! Property-based tests (proptest) of the core invariants the paper's
//! correctness argument relies on (§4, §5.6):
//!
//! * splittable operations commute with themselves;
//! * applying operations to per-core slices and merging equals applying them
//!   directly to the global value, for any partition of the operations across
//!   cores;
//! * the OCC engine is linearisable for single-worker streams (checked
//!   against a simple model);
//! * a Doppel phase cycle (joined → split → reconcile) produces the same
//!   final state as executing the same operations directly.

use doppel_common::{
    DoppelConfig, Engine, Key, Op, OpKind, OrderKey, ProcedureFn, TopKSet, Value,
};
use doppel_db::{DoppelDb, Phase, Slice};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Strategy: an argument for an integer operation.
fn int_arg() -> impl Strategy<Value = i64> {
    -1_000i64..1_000
}

/// Strategy: a splittable integer operation.
fn int_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        int_arg().prop_map(Op::Add),
        int_arg().prop_map(Op::Max),
        int_arg().prop_map(Op::Min),
    ]
}

/// Applies `ops` directly to `initial` through the global-store semantics.
fn apply_direct(initial: i64, ops: &[Op]) -> Value {
    ops.iter().fold(Value::Int(initial), |acc, op| op.apply_to(Some(&acc)).unwrap())
}

proptest! {
    /// §4 guideline 1: each splittable integer operation commutes with
    /// itself — any permutation of a homogeneous batch gives the same result.
    #[test]
    fn homogeneous_batches_commute(
        initial in int_arg(),
        args in prop::collection::vec(int_arg(), 1..20),
        kind in prop_oneof![Just(OpKind::Add), Just(OpKind::Max), Just(OpKind::Min), Just(OpKind::Mult)],
    ) {
        let make = |n: i64| match kind {
            OpKind::Add => Op::Add(n),
            OpKind::Max => Op::Max(n),
            OpKind::Min => Op::Min(n),
            OpKind::Mult => Op::Mult(n % 7), // keep products in range
            _ => unreachable!(),
        };
        let forward: Vec<Op> = args.iter().map(|&n| make(n)).collect();
        let mut reversed = forward.clone();
        reversed.reverse();
        prop_assert_eq!(apply_direct(initial, &forward), apply_direct(initial, &reversed));
    }

    /// The heart of §4: applying a homogeneous batch of operations to
    /// per-core slices and merging the slices equals applying the batch
    /// directly, for any assignment of operations to cores.
    #[test]
    fn slice_then_merge_equals_direct(
        initial in int_arg(),
        ops_with_core in prop::collection::vec((int_arg(), 0usize..4), 1..40),
        kind in prop_oneof![Just(OpKind::Add), Just(OpKind::Max), Just(OpKind::Min)],
    ) {
        let make = |n: i64| match kind {
            OpKind::Add => Op::Add(n),
            OpKind::Max => Op::Max(n),
            OpKind::Min => Op::Min(n),
            _ => unreachable!(),
        };
        let direct = apply_direct(initial, &ops_with_core.iter().map(|&(n, _)| make(n)).collect::<Vec<_>>());

        let mut slices: Vec<Slice> = (0..4).map(|_| Slice::new(kind)).collect();
        for &(n, core) in &ops_with_core {
            slices[core].apply(&make(n)).unwrap();
        }
        let mut merged = Value::Int(initial);
        for slice in slices {
            for op in slice.into_merge_ops() {
                merged = op.apply_to(Some(&merged)).unwrap();
            }
        }
        prop_assert_eq!(merged, direct);
    }

    /// Top-K sets: inserting through per-core slices and merging produces the
    /// same set as inserting everything into one set, regardless of how the
    /// inserts are distributed across cores.
    #[test]
    fn topk_slice_merge_equals_direct(
        entries in prop::collection::vec((0i64..200, 0usize..4), 1..60),
        k in 1usize..8,
    ) {
        let mut direct = TopKSet::new(k);
        for (order, core) in &entries {
            direct.insert(OrderKey::from(*order), *core, order.to_le_bytes().to_vec());
        }

        let mut slices: Vec<Slice> = (0..4).map(|_| Slice::new(OpKind::TopKInsert)).collect();
        for (order, core) in &entries {
            slices[*core]
                .apply(&Op::TopKInsert {
                    order: OrderKey::from(*order),
                    core: *core,
                    payload: order.to_le_bytes().to_vec().into(),
                    k,
                })
                .unwrap();
        }
        let mut merged_value = Value::TopK(TopKSet::new(k));
        for slice in slices {
            for op in slice.into_merge_ops() {
                merged_value = op.apply_to(Some(&merged_value)).unwrap();
            }
        }
        prop_assert_eq!(merged_value.as_topk().unwrap(), &direct);
    }

    /// OPut: the winning tuple is the one with the lexicographically largest
    /// (order, core), however the writes are interleaved or partitioned.
    #[test]
    fn oput_winner_is_order_core_maximum(
        entries in prop::collection::vec((0i64..100, 0usize..4), 1..30),
    ) {
        let expected = entries
            .iter()
            .max_by_key(|(order, core)| (*order, *core))
            .copied()
            .unwrap();

        let mut slices: Vec<Slice> = (0..4).map(|_| Slice::new(OpKind::OPut)).collect();
        for (order, core) in &entries {
            slices[*core]
                .apply(&Op::OPut {
                    order: OrderKey::from(*order),
                    core: *core,
                    payload: format!("{order}/{core}").into_bytes().into(),
                })
                .unwrap();
        }
        let mut merged = None;
        for slice in slices {
            for op in slice.into_merge_ops() {
                merged = Some(op.apply_to(merged.as_ref()).unwrap());
            }
        }
        let tuple = merged.unwrap();
        let tuple = tuple.as_tuple().unwrap();
        prop_assert_eq!(tuple.order.primary(), expected.0);
        prop_assert_eq!(tuple.core, expected.1);
    }

    /// The OCC engine agrees with a simple sequential model on single-worker
    /// operation streams over a small key space.
    #[test]
    fn occ_matches_sequential_model(
        steps in prop::collection::vec((0u64..6, int_op()), 1..60),
    ) {
        let engine = doppel_occ::OccEngine::new(1, 16);
        let mut model: HashMap<u64, i64> = HashMap::new();
        for k in 0..6u64 {
            engine.load(Key::raw(k), Value::Int(0));
            model.insert(k, 0);
        }
        let mut handle = engine.handle(0);
        for (key, op) in &steps {
            let cur = model[key];
            let new = op.apply_to(Some(&Value::Int(cur))).unwrap().as_int().unwrap();
            model.insert(*key, new);

            let key_copy = Key::raw(*key);
            let op_copy = op.clone();
            let proc = Arc::new(ProcedureFn::new("step", move |tx| {
                tx.write_op(key_copy, op_copy.clone())
            }));
            prop_assert!(handle.execute(proc).is_committed());
        }
        for (k, expected) in model {
            prop_assert_eq!(engine.global_get(Key::raw(k)), Some(Value::Int(expected)));
        }
    }

    /// A full Doppel phase cycle over randomly generated homogeneous updates
    /// to split keys produces the same final values as the sequential model.
    #[test]
    fn doppel_phase_cycle_matches_model(
        steps in prop::collection::vec((0u64..3, int_arg()), 1..50),
    ) {
        let db = DoppelDb::new(DoppelConfig {
            workers: 1,
            split_min_conflicts: 1,
            split_conflict_fraction: 0.0,
            unsplit_write_fraction: 0.0,
            ..DoppelConfig::default()
        });
        let mut model: HashMap<u64, i64> = HashMap::new();
        for k in 0..3u64 {
            db.load(Key::raw(k), Value::Int(0));
            db.label_split(Key::raw(k), OpKind::Add);
            model.insert(k, 0);
        }
        let mut w = db.handle(0);
        db.request_phase(Phase::Split);
        w.safepoint();
        for (key, amount) in &steps {
            *model.get_mut(key).unwrap() += amount;
            let key_copy = Key::raw(*key);
            let amount = *amount;
            let proc = Arc::new(ProcedureFn::new("add", move |tx| tx.add(key_copy, amount)));
            prop_assert!(w.execute(proc).is_committed());
        }
        db.request_phase(Phase::Joined);
        w.safepoint();
        for (k, expected) in model {
            prop_assert_eq!(db.global_get(Key::raw(k)), Some(Value::Int(expected)));
        }
    }
}
