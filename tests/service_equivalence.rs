//! Service-vs-direct equivalence: the transaction service is a *transport*,
//! not a semantics change.
//!
//! For every engine, a generated transaction stream must leave the store in
//! exactly the same final state whether it is executed the old way (the
//! benchmark thread calling [`TxHandle::execute`] on its own stack) or
//! submitted through the service's queues and completed asynchronously —
//! including streams that go through Doppel split phases with stash-deferred
//! reads.

use doppel_bench::engines::{build_engine, EngineKind, EngineParams};
use doppel_common::{Engine, IntSet, Key, Outcome, ProcedureFn, SubmitError, Value};
use doppel_service::{ServiceConfig, TransactionService};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const INT_KEYS: u64 = 8;
const SET_KEYS: u64 = 4;
const SET_BASE: u64 = 100;

/// One generated single-op transaction.
#[derive(Clone, Debug)]
enum TxnSpec {
    Add { key: u64, n: i64 },
    Max { key: u64, n: i64 },
    Min { key: u64, n: i64 },
    BitOr { key: u64, n: i64 },
    BoundedAdd { key: u64, n: i64 },
    SetInsert { key: u64, elem: i64 },
    Put { key: u64, n: i64 },
    /// Read-modify-write: `v ← v / 2 + n` (order-dependent, so FIFO
    /// submission order must be preserved by the service).
    Rmw { key: u64, n: i64 },
}

impl TxnSpec {
    fn proc(&self) -> Arc<dyn doppel_common::Procedure> {
        match self.clone() {
            TxnSpec::Add { key, n } => {
                Arc::new(ProcedureFn::new("add", move |tx| tx.add(Key::raw(key), n)))
            }
            TxnSpec::Max { key, n } => {
                Arc::new(ProcedureFn::new("max", move |tx| tx.max(Key::raw(key), n)))
            }
            TxnSpec::Min { key, n } => {
                Arc::new(ProcedureFn::new("min", move |tx| tx.min(Key::raw(key), n)))
            }
            TxnSpec::BitOr { key, n } => {
                Arc::new(ProcedureFn::new("bitor", move |tx| tx.bit_or(Key::raw(key), n)))
            }
            TxnSpec::BoundedAdd { key, n } => Arc::new(ProcedureFn::new("badd", move |tx| {
                tx.bounded_add(Key::raw(key), n, 500)
            })),
            TxnSpec::SetInsert { key, elem } => Arc::new(ProcedureFn::new("sins", move |tx| {
                tx.set_insert(Key::raw(SET_BASE + key), elem)
            })),
            TxnSpec::Put { key, n } => {
                Arc::new(ProcedureFn::new("put", move |tx| tx.put(Key::raw(key), Value::Int(n))))
            }
            TxnSpec::Rmw { key, n } => Arc::new(ProcedureFn::new("rmw", move |tx| {
                let v = tx.get_int(Key::raw(key))?;
                tx.put(Key::raw(key), Value::Int(v / 2 + n))
            })),
        }
    }
}

fn arb_stream() -> impl Strategy<Value = Vec<TxnSpec>> {
    let spec = (0u64..INT_KEYS, 0u64..SET_KEYS, -500i64..500, 0u8..8).prop_map(
        |(ikey, skey, n, kind)| match kind {
            0 => TxnSpec::Add { key: ikey, n },
            1 => TxnSpec::Max { key: ikey, n },
            2 => TxnSpec::Min { key: ikey, n },
            3 => TxnSpec::BitOr { key: ikey, n: n & 0xFFFF },
            4 => TxnSpec::BoundedAdd { key: ikey, n: n.rem_euclid(60) },
            5 => TxnSpec::SetInsert { key: skey, elem: n.rem_euclid(64) },
            6 => TxnSpec::Put { key: ikey, n },
            _ => TxnSpec::Rmw { key: ikey, n },
        },
    );
    prop::collection::vec(spec, 0..120)
}

fn load(engine: &dyn Engine) {
    for k in 0..INT_KEYS {
        engine.load(Key::raw(k), Value::Int(0));
    }
    for k in 0..SET_KEYS {
        engine.load(Key::raw(SET_BASE + k), Value::Set(IntSet::default()));
    }
}

fn snapshot(engine: &dyn Engine) -> Vec<Option<Value>> {
    (0..INT_KEYS)
        .map(Key::raw)
        .chain((0..SET_KEYS).map(|k| Key::raw(SET_BASE + k)))
        .map(|k| engine.global_get(k))
        .collect()
}

/// Executes the stream on the caller's stack through a single direct handle.
fn run_direct(engine: &dyn Engine, txns: &[TxnSpec]) -> Vec<Option<Value>> {
    load(engine);
    let mut handle = engine.handle(0);
    for spec in txns {
        let proc = spec.proc();
        let mut attempts = 0;
        loop {
            match handle.execute(Arc::clone(&proc)) {
                Outcome::Committed(_) => break,
                Outcome::Aborted(e) if e.is_retryable() && attempts < 1_000 => attempts += 1,
                Outcome::Aborted(e) => panic!("direct execution aborted: {e}"),
                Outcome::Stashed(_) => {
                    // Replay happens at the next joined phase; drive
                    // safepoints until the completion surfaces.
                    let deadline = Instant::now() + Duration::from_secs(10);
                    loop {
                        handle.safepoint();
                        let completions = handle.take_completions();
                        if !completions.is_empty() {
                            assert!(completions[0].result.is_ok(), "stash replay aborted");
                            break;
                        }
                        assert!(Instant::now() < deadline, "stash never replayed");
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    break;
                }
            }
        }
    }
    drop(handle);
    engine.shutdown();
    snapshot(engine)
}

/// Submits the stream through a single-worker transaction service, waiting
/// for each typed completion.
fn run_via_service(engine: Arc<dyn Engine>, txns: &[TxnSpec]) -> Vec<Option<Value>> {
    load(engine.as_ref());
    let service = TransactionService::start(Arc::clone(&engine), ServiceConfig::default());
    let mut client = service.client();
    for spec in txns {
        let proc = spec.proc();
        let mut attempts = 0;
        loop {
            let id = loop {
                match client.submit_to(0, Arc::clone(&proc)) {
                    Ok(id) => break id,
                    Err(SubmitError::Busy) => std::thread::sleep(Duration::from_micros(10)),
                    Err(SubmitError::Shutdown) => panic!("service shut down mid-stream"),
                }
            };
            let done = client.wait(id);
            match done.result {
                Ok(_) => break,
                Err(e) if e.is_retryable() && attempts < 1_000 => attempts += 1,
                Err(e) => panic!("service execution aborted: {e}"),
            }
        }
    }
    service.shutdown();
    snapshot(engine.as_ref())
}

proptest! {
    /// The same stream through the service path and the direct path leaves
    /// identical final stores, for all four engines — and all four engines
    /// agree with each other.
    #[test]
    fn service_path_equals_direct_path_on_all_engines(txns in arb_stream()) {
        let params = EngineParams { workers: 1, shards: 64, ..EngineParams::default() };
        let mut reference: Option<(&'static str, Vec<Option<Value>>)> = None;
        for kind in EngineKind::ALL {
            let direct_engine = build_engine(*kind, &params);
            let direct = run_direct(direct_engine.as_ref(), &txns);

            let service_engine: Arc<dyn Engine> = Arc::from(build_engine(*kind, &params));
            let via_service = run_via_service(Arc::clone(&service_engine), &txns);

            prop_assert_eq!(
                &via_service, &direct,
                "{} service path diverged from direct path", kind.label()
            );
            match reference.take() {
                None => reference = Some((kind.label(), direct)),
                Some((ref_name, ref_state)) => {
                    prop_assert_eq!(
                        &direct, &ref_state,
                        "{} diverged from {}", kind.label(), ref_name
                    );
                    reference = Some((ref_name, ref_state));
                }
            }
        }
    }
}

/// A stream of increments and reads on one split-labelled Doppel key.
#[derive(Clone, Debug)]
enum HotOp {
    Incr(i64),
    Read,
}

fn arb_hot_stream() -> impl Strategy<Value = Vec<HotOp>> {
    let op = (0u8..4, 1i64..20).prop_map(|(kind, n)| match kind {
        0 => HotOp::Read,
        _ => HotOp::Incr(n),
    });
    prop::collection::vec(op, 1..60)
}

proptest! {
    /// Doppel through the service with an actively split key: increments go
    /// through slices, reads get stash-deferred and replayed, and the final
    /// counter equals the model sum — the service path handles the full
    /// phase machinery, not just the joined-phase fast path.
    #[test]
    fn doppel_split_phases_through_the_service_preserve_the_counter(ops in arb_hot_stream()) {
        let cfg = doppel_common::DoppelConfig {
            workers: 1,
            phase_len: Duration::from_millis(3),
            split_min_conflicts: 1,
            split_conflict_fraction: 0.0,
            unsplit_write_fraction: 0.0,
            ..Default::default()
        };
        let db = Arc::new(doppel_db::DoppelDb::start(cfg));
        db.load(Key::raw(0), Value::Int(0));
        db.label_split(Key::raw(0), doppel_common::OpKind::Add);
        let engine: Arc<dyn Engine> = db.clone();
        let service = TransactionService::start(engine, ServiceConfig::default());
        let mut client = service.client();

        let mut expected = 0i64;
        for op in &ops {
            match op {
                HotOp::Incr(n) => {
                    let n = *n;
                    expected += n;
                    let proc: Arc<dyn doppel_common::Procedure> =
                        Arc::new(ProcedureFn::new("incr", move |tx| tx.add(Key::raw(0), n)));
                    let id = client.submit_to(0, proc).unwrap();
                    let done = client.wait(id);
                    prop_assert!(done.result.is_ok(), "increment aborted: {:?}", done.result);
                }
                HotOp::Read => {
                    let proc: Arc<dyn doppel_common::Procedure> = Arc::new(
                        ProcedureFn::read_only("read", |tx| tx.get(Key::raw(0)).map(|_| ())),
                    );
                    let id = client.submit_to(0, proc).unwrap();
                    let done = client.wait(id);
                    prop_assert!(done.result.is_ok(), "read aborted: {:?}", done.result);
                    prop_assert_eq!(
                        done.deferred,
                        client.was_deferred(id),
                        "deferred flag must match the Deferred notice"
                    );
                }
            }
        }
        service.shutdown();
        prop_assert_eq!(db.global_get(Key::raw(0)), Some(Value::Int(expected)));
    }
}

/// Non-property smoke check that `Op` streams with every splittable kind run
/// through the service on a multi-worker engine without losing updates
/// (commutative ops only, so worker interleaving cannot change the result).
#[test]
fn multi_worker_service_preserves_commutative_totals() {
    let engine: Arc<dyn Engine> = Arc::new(doppel_occ::OccEngine::new(4, 256));
    engine.load(Key::raw(1), Value::Int(0));
    let service = TransactionService::start(Arc::clone(&engine), ServiceConfig::default());
    let mut client = service.client();
    let mut ids = Vec::new();
    for _ in 0..400 {
        let proc: Arc<dyn doppel_common::Procedure> =
            Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)));
        loop {
            match client.submit(Arc::clone(&proc)) {
                Ok(id) => {
                    ids.push(id);
                    break;
                }
                Err(SubmitError::Busy) => std::thread::sleep(Duration::from_micros(10)),
                Err(SubmitError::Shutdown) => unreachable!("service is running"),
            }
        }
    }
    let mut committed = 0;
    for id in ids {
        let done = client.wait(id);
        match done.result {
            Ok(_) => committed += 1,
            Err(e) => assert!(e.is_retryable(), "unexpected abort {e}"),
        }
    }
    service.shutdown();
    assert_eq!(
        engine.global_get(Key::raw(1)),
        Some(Value::Int(committed)),
        "every committed increment must be in the store"
    );
    assert!(committed > 0);
}
