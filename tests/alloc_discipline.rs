//! Allocation-discipline tests: pin the hot path's allocation budget.
//!
//! Transaction state is pooled per worker (read/write sets, 2PL lock lists,
//! Doppel split buffers) and frames decode borrowed from the receive buffer,
//! so a committed transaction should cost ~zero heap allocations once its
//! worker's pools are warm. These tests measure real allocation counts
//! through the counting global allocator and fail if a hot path regresses
//! past a generous per-transaction budget.
//!
//! The counting allocator is registered by `doppel_bench` (`use doppel_bench
//! as _` below links it in); a binary admits exactly one `#[global_allocator]`,
//! so this file must never register its own.

use doppel_bench as _;

use doppel_common::{
    DoppelConfig, Engine, Key, OpKind, Outcome, Procedure, ProcedureFn, ThreadAllocCheckpoint,
    Value,
};
use doppel_db::{DoppelDb, Phase};
use doppel_service::wire::{decode_client, encode_client, write_frame, ClientMsg, FrameDecoder};
use std::sync::Arc;

const WARMUP: usize = 256;
const MEASURED: usize = 2048;

/// Runs `txn` WARMUP times to fill the worker's pools, then MEASURED times
/// under a thread-local allocation checkpoint; returns mean allocations per
/// committed transaction. Single-threaded on purpose: the thread-local
/// counters see exactly this worker's traffic.
fn allocs_per_commit(mut txn: impl FnMut() -> bool) -> f64 {
    for _ in 0..WARMUP {
        txn();
    }
    let cp = ThreadAllocCheckpoint::now();
    let mut commits = 0u64;
    for _ in 0..MEASURED {
        if txn() {
            commits += 1;
        }
    }
    let (count, _bytes) = cp.delta();
    assert!(commits > 0, "measurement loop committed nothing");
    count as f64 / commits as f64
}

#[test]
fn occ_commit_allocation_budget() {
    let engine = doppel_occ::OccEngine::new(1, 64);
    engine.load(Key::raw(1), Value::Int(0));
    let mut handle = engine.handle(0);
    let incr: Arc<dyn Procedure> = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)));
    let avg = allocs_per_commit(|| {
        matches!(handle.execute(Arc::clone(&incr)), Outcome::Committed(_))
    });
    assert!(avg <= 2.0, "OCC INCR commit allocates {avg:.2} per txn (budget 2)");
}

#[test]
fn twopl_commit_allocation_budget() {
    let engine = doppel_twopl::TwoplEngine::new(1, 64);
    engine.load(Key::raw(1), Value::Int(0));
    let mut handle = engine.handle(0);
    let incr: Arc<dyn Procedure> = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)));
    let avg = allocs_per_commit(|| {
        matches!(handle.execute(Arc::clone(&incr)), Outcome::Committed(_))
    });
    assert!(avg <= 8.0, "2PL INCR commit allocates {avg:.2} per txn (budget 8)");
}

#[test]
fn atomic_commit_allocation_budget() {
    let engine = doppel_atomic::AtomicEngine::new(1);
    engine.load(Key::raw(1), Value::Int(0));
    let mut handle = engine.handle(0);
    let incr: Arc<dyn Procedure> = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)));
    let avg = allocs_per_commit(|| {
        matches!(handle.execute(Arc::clone(&incr)), Outcome::Committed(_))
    });
    assert!(avg <= 2.0, "Atomic INCR commit allocates {avg:.2} per txn (budget 2)");
}

#[test]
fn doppel_split_phase_allocation_budget() {
    // Manual phase control, one worker: increments on a split record take
    // the per-core-slice fast path, which must be allocation-free once the
    // slice exists.
    let db = DoppelDb::new(DoppelConfig::with_workers(1));
    db.load(Key::raw(1), Value::Int(0));
    db.label_split(Key::raw(1), OpKind::Add);
    let mut worker = db.handle(0);
    db.request_phase(Phase::Split);
    worker.safepoint();
    let incr: Arc<dyn Procedure> = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)));
    let avg = allocs_per_commit(|| {
        matches!(worker.execute(Arc::clone(&incr)), Outcome::Committed(_))
    });
    assert!(avg <= 4.0, "Doppel split-phase INCR allocates {avg:.2} per txn (budget 4)");
}

#[test]
fn doppel_joined_phase_allocation_budget() {
    let db = DoppelDb::new(DoppelConfig::with_workers(1));
    db.load(Key::raw(1), Value::Int(0));
    let mut worker = db.handle(0);
    let incr: Arc<dyn Procedure> = Arc::new(ProcedureFn::new("incr", |tx| tx.add(Key::raw(1), 1)));
    let avg = allocs_per_commit(|| {
        matches!(worker.execute(Arc::clone(&incr)), Outcome::Committed(_))
    });
    assert!(avg <= 4.0, "Doppel joined-phase INCR allocates {avg:.2} per txn (budget 4)");
}

#[test]
fn frame_decode_is_allocation_free() {
    // A stream of Ping frames: next_frame_ref borrows payloads from the
    // receive buffer and Ping decodes without owned fields, so the decode
    // loop itself must not allocate at all.
    let frames = 512u64;
    let mut stream = Vec::new();
    for id in 0..frames {
        write_frame(&mut stream, &encode_client(&ClientMsg::Ping { id })).unwrap();
    }
    let mut decoder = FrameDecoder::new();
    decoder.feed(&stream);

    let cp = ThreadAllocCheckpoint::now();
    let mut decoded = 0u64;
    while let Some(payload) = decoder.next_frame_ref().unwrap() {
        let msg = decode_client(payload).unwrap();
        assert!(matches!(msg, ClientMsg::Ping { .. }));
        decoded += 1;
    }
    let (count, _bytes) = cp.delta();
    assert_eq!(decoded, frames);
    assert_eq!(count, 0, "decoding {frames} buffered frames allocated {count} times");
}
