//! Telemetry-subsystem integration tests: property tests of the log-linear
//! histogram's accuracy contract (quantiles within one bucket of the exact
//! order statistic, merge associativity, cumulative-delta consistency) and a
//! live `GetStats` roundtrip over TCP against an in-process `doppel-server`
//! front-end.

use doppel_common::{Key, Value};
use doppel_service::{RemoteClient, RemoteTxn, Server, ServerEngine, ServiceConfig};
use doppel_telemetry::Histogram;
use proptest::prelude::*;

/// Largest value that still lands in a bounded bucket (the overflow bucket is
/// unbounded above and reports the exact maximum instead of a midpoint).
const IN_RANGE_NS: u64 = (1 << 28) - 1;

/// Strategy: a latency observation in nanoseconds, spanning the linear
/// region, every octave of the log region, and the sub-256ns floor.
fn latency_ns() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..8_192,                // linear buckets
        8_192u64..1_000_000,        // low octaves
        1_000_000u64..IN_RANGE_NS,  // high octaves (1ms..268ms)
    ]
}

fn build(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &ns in values {
        h.record_ns(ns);
    }
    h
}

/// The exact `q`-quantile under the histogram's rank convention:
/// the `ceil(total * q)`-th smallest observation (1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((sorted.len() as f64) * q).ceil().max(1.0) as usize;
    sorted[target.min(sorted.len()) - 1]
}

proptest! {
    /// The reported quantile stays within one bucket width of the exact
    /// order statistic: 256 ns in the linear region, value/32 in the
    /// logarithmic region.
    #[test]
    fn quantiles_within_bucket_error_of_exact(
        values in prop::collection::vec(latency_ns(), 1..300),
        q_pct in 1u64..100,
    ) {
        let q = q_pct as f64 / 100.0;
        let h = build(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let got = h.quantile_ns(q);
        let tolerance = exact / 32 + 256;
        prop_assert!(
            got.abs_diff(exact) <= tolerance,
            "q={q}: got {got}, exact {exact}, tolerance {tolerance}"
        );
    }

    /// Merging is associative and commutative, and the merged histogram is
    /// exactly the histogram of the concatenated observations.
    #[test]
    fn merge_is_associative_and_order_free(
        a in prop::collection::vec(latency_ns(), 0..100),
        b in prop::collection::vec(latency_ns(), 0..100),
        c in prop::collection::vec(latency_ns(), 0..100),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        // b ⊕ a == a ⊕ b
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // ⊕ over the parts == one histogram over the whole.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &build(&all));
    }

    /// Subtracting an earlier cumulative snapshot recovers exactly the
    /// observations recorded in between (modulo the documented max_ns
    /// upper-bound carry-over).
    #[test]
    fn delta_recovers_the_interval(
        earlier in prop::collection::vec(latency_ns(), 0..100),
        interval in prop::collection::vec(latency_ns(), 0..100),
    ) {
        let before = build(&earlier);
        let mut cumulative = before.clone();
        for &ns in &interval {
            cumulative.record_ns(ns);
        }
        let d = cumulative.delta(&before);
        let expect = build(&interval);
        prop_assert_eq!(d.bucket_counts(), expect.bucket_counts());
        prop_assert_eq!(d.count(), expect.count());
        prop_assert_eq!(d.sum_ns(), expect.sum_ns());
        // The interval max is not recoverable; the cumulative max stands in.
        prop_assert_eq!(d.max_ns(), cumulative.max_ns());
    }
}

/// The acceptance path: a live server answers `GetStats` over real sockets
/// with engine counters, phase-duration histograms and the current phase.
#[test]
fn get_stats_over_tcp_reports_live_telemetry() {
    let engine = ServerEngine::build("doppel", 2, 10, 256).expect("known engine");
    let server =
        Server::start(engine, ServiceConfig::default(), "127.0.0.1:0").expect("bind ephemeral");
    let mut client = RemoteClient::connect(server.local_addr()).unwrap();

    // An idle server still answers, self-describingly.
    let idle = client.stats().expect("GetStats on idle server");
    assert!(idle.scalar("commits").is_some(), "commits counter is always present");
    assert!(idle.hist("exec").is_some(), "exec histogram is always present");

    // Commit some work, then poll again: the counters and the service-layer
    // histograms must have moved.
    let put = RemoteTxn::new().put(Key::raw(1), Value::Int(0));
    assert!(client.execute(&put).unwrap().is_committed());
    for _ in 0..20 {
        let incr = RemoteTxn::new().add(Key::raw(1), 1);
        assert!(client.execute(&incr).unwrap().is_committed());
    }
    let busy = client.stats().expect("GetStats on busy server");
    assert!(busy.scalar("commits").unwrap() >= 21, "commits: {:?}", busy.scalar("commits"));
    assert!(
        busy.scalar("commits").unwrap() > idle.scalar("commits").unwrap_or(0),
        "counters advance between polls"
    );
    let exec = busy.hist("exec").expect("exec histogram");
    assert!(exec.count() >= 21, "every executed txn lands in the exec histogram");
    assert!(busy.hist("queue_wait").is_some(), "queue-wait histogram present");
    // The Doppel engine contributes its phase machinery: the phase string and
    // the phase-duration/stash histograms ride along in the same snapshot.
    assert!(
        busy.phase == "joined" || busy.phase == "split",
        "doppel reports its phase, got {:?}",
        busy.phase
    );
    assert!(busy.hist("phase_joined").is_some(), "phase-duration histograms present");
    assert!(busy.hist("stash_replay").is_some(), "stash-latency histogram present");
    // Wire roundtrip sanity: the snapshot is internally consistent.
    assert_eq!(exec.count(), exec.bucket_counts().iter().map(|&c| c as u64).sum::<u64>());

    server.shutdown();
}
