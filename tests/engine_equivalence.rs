//! All four engines implement the same transactional semantics: a
//! deterministic single-worker transaction stream must leave every engine's
//! store in the same state (the Atomic baseline included, because with one
//! worker there is no concurrency for it to mis-handle).

use doppel_bench::engines::{build_engine, EngineKind, EngineParams};
use doppel_common::{Engine, Key, OrderKey, ProcedureFn, Value};
use std::sync::Arc;
use std::time::Duration;

/// Runs a deterministic mixed-operation workload on one worker.
fn run_stream(engine: &dyn Engine) -> Vec<Option<Value>> {
    for k in 0..16u64 {
        engine.load(Key::raw(k), Value::Int(0));
    }
    let mut handle = engine.handle(0);
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for step in 0..2_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let key = Key::raw(x % 16);
        let arg = (x % 1_000) as i64;
        let proc: Arc<dyn doppel_common::Procedure> = match step % 5 {
            0 => Arc::new(ProcedureFn::new("add", move |tx| tx.add(key, arg))),
            1 => Arc::new(ProcedureFn::new("max", move |tx| tx.max(key, arg))),
            2 => Arc::new(ProcedureFn::new("min", move |tx| tx.min(key, -arg))),
            3 => Arc::new(ProcedureFn::new("rmw", move |tx| {
                let current = tx.get_int(key)?;
                tx.put(key, Value::Int(current / 2 + arg))
            })),
            _ => Arc::new(ProcedureFn::new("combo", move |tx| {
                tx.add(key, 1)?;
                tx.add(Key::raw((key.id() + 1) % 16), arg % 10)
            })),
        };
        let outcome = handle.execute(proc);
        assert!(outcome.is_committed(), "single-worker transactions never conflict: {outcome:?}");
    }
    (0..16u64).map(|k| engine.global_get(Key::raw(k))).collect()
}

#[test]
fn all_engines_agree_on_a_deterministic_stream() {
    let params = EngineParams { workers: 1, ..EngineParams::default() };
    let mut results = Vec::new();
    for kind in EngineKind::ALL {
        let engine = build_engine(*kind, &params);
        let state = run_stream(engine.as_ref());
        engine.shutdown();
        results.push((kind.label(), state));
    }
    let (reference_name, reference) = &results[0];
    for (name, state) in &results[1..] {
        assert_eq!(
            state, reference,
            "{name} diverged from {reference_name} on a deterministic stream"
        );
    }
}

#[test]
fn doppel_with_and_without_splitting_agree() {
    // Ablation: disabling splitting must not change results, only performance.
    let enabled = build_engine(EngineKind::Doppel, &EngineParams { workers: 1, ..Default::default() });
    let disabled = build_engine(
        EngineKind::Doppel,
        &EngineParams { workers: 1, disable_splitting: true, ..Default::default() },
    );
    let a = run_stream(enabled.as_ref());
    let b = run_stream(disabled.as_ref());
    enabled.shutdown();
    disabled.shutdown();
    assert_eq!(a, b);
}

#[test]
fn ordered_tuple_and_topk_operations_agree_across_transactional_engines() {
    // OPut / TopKInsert are not supported by the Atomic baseline's fast path
    // in a meaningful way, so compare the three transactional engines.
    let params = EngineParams { workers: 1, ..EngineParams::default() };
    let mut states = Vec::new();
    for kind in EngineKind::TRANSACTIONAL {
        let engine = build_engine(*kind, &params);
        let mut handle = engine.handle(0);
        for i in 0..200u64 {
            let order = ((i * 37) % 101) as i64;
            let proc = Arc::new(ProcedureFn::new("board", move |tx| {
                tx.topk_insert(
                    Key::raw(0),
                    OrderKey::from(order),
                    order.to_le_bytes().to_vec().into(),
                    8,
                )?;
                tx.oput(
                    Key::raw(1),
                    OrderKey::pair(order, i as i64),
                    i.to_le_bytes().to_vec().into(),
                )
            }));
            assert!(handle.execute(proc).is_committed());
        }
        states.push((kind.label(), engine.global_get(Key::raw(0)), engine.global_get(Key::raw(1))));
        engine.shutdown();
    }
    for window in states.windows(2) {
        assert_eq!(window[0].1, window[1].1, "{} vs {}", window[0].0, window[1].0);
        assert_eq!(window[0].2, window[1].2, "{} vs {}", window[0].0, window[1].0);
    }
}

/// Differential test over the new splittable operations: a deterministic
/// random mix of `Add` / `Max` / `Min` / `BitOr` / `BoundedAdd` on integer
/// records plus `SetUnion` on set records must leave **all four** engines —
/// Doppel, OCC, 2PL and Atomic — with byte-identical final stores. (Every
/// operation here maps to a lock-free update in the Atomic baseline, so
/// unlike `Mult`/`OPut`/`TopKInsert` it participates meaningfully.)
fn run_new_ops_stream(engine: &dyn Engine) -> String {
    const INT_KEYS: u64 = 8;
    const SET_KEYS: u64 = 4;
    const BOUND: i64 = 500;
    for k in 0..INT_KEYS {
        engine.load(Key::raw(k), Value::Int(0));
    }
    for k in 0..SET_KEYS {
        engine.load(Key::raw(100 + k), Value::Set(doppel_common::IntSet::new()));
    }
    let mut handle = engine.handle(0);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for step in 0..3_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let key = Key::raw(x % INT_KEYS);
        let set_key = Key::raw(100 + x % SET_KEYS);
        let arg = (x % 1_000) as i64 - 500;
        let proc: Arc<dyn doppel_common::Procedure> = match step % 6 {
            0 => Arc::new(ProcedureFn::new("add", move |tx| tx.add(key, arg))),
            1 => Arc::new(ProcedureFn::new("max", move |tx| tx.max(key, arg))),
            2 => Arc::new(ProcedureFn::new("min", move |tx| tx.min(key, arg))),
            3 => Arc::new(ProcedureFn::new("flags", move |tx| tx.bit_or(key, arg & 0xFFFF))),
            4 => Arc::new(ProcedureFn::new("rate", move |tx| {
                tx.bounded_add(key, arg.rem_euclid(40), BOUND)
            })),
            _ => Arc::new(ProcedureFn::new("visit", move |tx| {
                tx.set_insert(set_key, arg.rem_euclid(64))?;
                tx.bit_or(key, 1 << (x % 48))
            })),
        };
        let outcome = handle.execute(proc);
        assert!(outcome.is_committed(), "single-worker transactions never conflict: {outcome:?}");
    }
    let final_values: Vec<Option<Value>> = (0..INT_KEYS)
        .map(Key::raw)
        .chain((0..SET_KEYS).map(|k| Key::raw(100 + k)))
        .map(|k| engine.global_get(k))
        .collect();
    serde_json::to_string(&final_values).expect("final store serializes")
}

#[test]
fn new_ops_agree_across_all_four_engines() {
    let params = EngineParams { workers: 1, ..EngineParams::default() };
    let mut results = Vec::new();
    for kind in EngineKind::ALL {
        let engine = build_engine(*kind, &params);
        let state = run_new_ops_stream(engine.as_ref());
        engine.shutdown();
        results.push((kind.label(), state));
    }
    // Aggressive Doppel phase cycling must not change the outcome either.
    let cycled = build_engine(
        EngineKind::Doppel,
        &EngineParams { workers: 1, phase_len: Duration::from_millis(1), ..Default::default() },
    );
    results.push(("Doppel(1ms phases)", run_new_ops_stream(cycled.as_ref())));
    cycled.shutdown();

    let (reference_name, reference) = &results[0];
    for (name, state) in &results[1..] {
        assert_eq!(
            state, reference,
            "{name} diverged from {reference_name} on the new-operation stream"
        );
    }
}

#[test]
fn doppel_phase_cycling_does_not_change_single_worker_results() {
    // Run the same deterministic stream with an aggressive 1 ms phase length
    // so many phase transitions happen mid-stream; results must match the
    // OCC reference exactly.
    let occ = build_engine(EngineKind::Occ, &EngineParams { workers: 1, ..Default::default() });
    let reference = run_stream(occ.as_ref());
    occ.shutdown();

    let doppel = build_engine(
        EngineKind::Doppel,
        &EngineParams { workers: 1, phase_len: Duration::from_millis(1), ..Default::default() },
    );
    let cycled = run_stream(doppel.as_ref());
    doppel.shutdown();
    assert_eq!(cycled, reference);
}
