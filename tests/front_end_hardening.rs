//! Hardening tests for the TCP front-ends: hostile frames, oversize
//! payloads, and clients that stop reading their replies.
//!
//! Every scenario runs against both front-ends (the epoll reactor and the
//! thread-per-connection baseline) where the behaviour is a server-side
//! guarantee, because the two share the dispatch path but not the I/O
//! machinery.

use doppel_service::wire::{encode_client, write_frame, ClientMsg, WireStmt};
use doppel_service::{
    FrontEnd, ReactorConfig, RemoteClient, RemoteOutcome, RemoteTxn, Server, ServerEngine,
    ServiceConfig,
};
use doppel_common::{Key, Value};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// The front-ends every server-side scenario must hold for, with small
/// write queues so shed behaviour is reachable in a test.
fn front_ends(write_queue_bytes: usize) -> Vec<(&'static str, FrontEnd)> {
    vec![
        ("reactor", FrontEnd::Reactor(ReactorConfig { pollers: 1, write_queue_bytes })),
        ("threaded", FrontEnd::Threaded { write_queue_bytes }),
    ]
}

fn start_server(front_end: FrontEnd) -> Server {
    let engine = ServerEngine::build("occ", 1, 20, 64).expect("known engine");
    Server::start_with(engine, ServiceConfig::default(), "127.0.0.1:0", front_end)
        .expect("bind server")
}

/// Polls `check` until it returns true or ~2s elapse.
fn eventually(mut check: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// A hostile `Submit` whose statement count claims far more than the payload
/// holds must cost the sender its connection — and nothing else: the decoder
/// rejects it without reserving memory for the claimed count, and the server
/// keeps serving well-behaved clients.
#[test]
fn hostile_statement_count_drops_connection_but_server_survives() {
    for (name, front_end) in front_ends(1 << 20) {
        let server = start_server(front_end);

        let mut evil = TcpStream::connect(server.local_addr()).expect("connect");
        // kind=Submit, id, then a statement count the 13-byte payload cannot
        // possibly hold.
        let mut payload = vec![0x01u8];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        write_frame(&mut evil, &payload).expect("send hostile frame");
        evil.flush().expect("flush");

        // The server hangs up on the hostile connection...
        evil.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut buf = [0u8; 64];
        match evil.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("[{name}] expected hang-up, got {n} bytes"),
        }
        assert!(
            eventually(|| server.net_stats().decode_errors >= 1),
            "[{name}] the protocol error should be counted"
        );

        // ...and keeps serving everyone else.
        let mut client = RemoteClient::connect(server.local_addr()).expect("connect");
        let outcome =
            client.execute(&RemoteTxn::new().add(Key::from(1u64), 1)).expect("execute");
        assert!(outcome.is_committed(), "[{name}] server must stay up");
        server.shutdown();
    }
}

/// A reply frame with a hostile length prefix or value count must surface in
/// the client as `InvalidData`, not as an allocation or a hang.
#[test]
fn hostile_server_reply_is_invalid_data_client_side() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        // Swallow the client's request frame (length prefix + payload).
        let mut len = [0u8; 4];
        conn.read_exact(&mut len).expect("read request header");
        let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
        conn.read_exact(&mut body).expect("read request body");
        // Reply with a Done whose value count claims ~2 billion entries.
        let mut payload = vec![0x81u8];
        payload.extend_from_slice(&1u64.to_le_bytes()); // request id
        payload.push(0); // status: committed
        payload.extend_from_slice(&7u64.to_le_bytes()); // tid
        payload.push(0); // not deferred
        payload.extend_from_slice(&0x7FFF_FFFFu32.to_le_bytes()); // value count
        write_frame(&mut conn, &payload).expect("send hostile reply");
        conn.flush().expect("flush");
    });

    let mut client = RemoteClient::connect(addr).expect("connect");
    let id = client.submit(&RemoteTxn::new().get(Key::from(1u64))).expect("submit");
    let err = client.wait(id).expect_err("hostile reply must not decode");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    fake.join().expect("fake server thread");
}

/// A request that cannot fit in one frame fails at the client with
/// `InvalidData` instead of being written (the old `debug_assert!` would
/// ship a corrupt frame in release builds).
#[test]
fn oversize_submit_fails_client_side_with_invalid_data() {
    let server = start_server(FrontEnd::default());
    let mut client = RemoteClient::connect(server.local_addr()).expect("connect");
    let huge = Value::Bytes(bytes::Bytes::from(vec![0u8; 17 * 1024 * 1024]));
    let err = client
        .submit(&RemoteTxn::new().put(Key::from(1u64), huge))
        .expect_err("a 17MiB payload exceeds MAX_FRAME");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // The connection is still usable: nothing was written for the bad frame.
    let outcome = client.execute(&RemoteTxn::new().add(Key::from(1u64), 1)).expect("execute");
    assert!(outcome.is_committed());
    server.shutdown();
}

/// A client that submits but never reads its replies must be disconnected
/// once its bounded reply queue overflows — server memory stays bounded and
/// the shed is visible in the stats — while other clients keep working.
#[test]
fn slow_reader_is_shed_not_buffered_without_bound() {
    for (name, front_end) in front_ends(1024) {
        let server = start_server(front_end);
        let big_key = Key::from(42u64);

        // Preload a value whose reply frame alone exceeds the queue budget.
        let mut loader = RemoteClient::connect(server.local_addr()).expect("connect");
        let payload = Value::Bytes(bytes::Bytes::from(vec![0xCDu8; 64 * 1024]));
        assert!(loader
            .execute(&RemoteTxn::new().put(big_key, payload))
            .expect("preload")
            .is_committed());

        // The slow reader: submit a read of the big value, never read the
        // reply.
        let mut slow = TcpStream::connect(server.local_addr()).expect("connect");
        let msg = ClientMsg::Submit { id: 1, stmts: vec![WireStmt::Get(big_key)] };
        write_frame(&mut slow, &encode_client(&msg)).expect("submit");
        slow.flush().expect("flush");

        assert!(
            eventually(|| server.net_stats().conns_shed >= 1),
            "[{name}] the overflowing connection must be shed"
        );
        // The shed closes the socket: reading now sees EOF or a reset, never
        // a hang.
        slow.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut sink = [0u8; 4096];
        loop {
            match slow.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => continue,
            }
        }

        // Unrelated clients are unaffected.
        let outcome =
            loader.execute(&RemoteTxn::new().add(Key::from(7u64), 1)).expect("execute");
        assert!(outcome.is_committed(), "[{name}] healthy clients must keep working");
        server.shutdown();
    }
}

/// The thread-per-connection baseline stays fully functional behind the
/// explicit opt-in, including pipelined submission and value reads.
#[test]
fn threaded_front_end_still_serves_roundtrips() {
    let server = start_server(FrontEnd::threaded());
    let mut client = RemoteClient::connect(server.local_addr()).expect("connect");
    let mut ids = Vec::new();
    for _ in 0..32 {
        let txn = RemoteTxn::new().add(Key::from(9u64), 1).get(Key::from(9u64));
        ids.push(client.submit(&txn).expect("submit"));
    }
    let mut committed = 0;
    for id in ids {
        if let RemoteOutcome::Committed { .. } = client.wait(id).expect("wait") {
            committed += 1;
        }
    }
    assert_eq!(committed, 32);
    assert_eq!(server.net_stats().conns_accepted, 1);
    server.shutdown();
}

/// The reactor multiplexes many simultaneously-open connections on one
/// poller thread.
#[test]
fn reactor_serves_many_concurrent_connections() {
    let server = start_server(FrontEnd::Reactor(ReactorConfig {
        pollers: 1,
        write_queue_bytes: 1 << 20,
    }));
    let addr = server.local_addr();
    let mut clients: Vec<RemoteClient> =
        (0..32).map(|_| RemoteClient::connect(addr).expect("connect")).collect();
    // All connections submit before any waits: every socket has bytes in
    // flight through the single poller at once.
    let ids: Vec<u64> = clients
        .iter_mut()
        .enumerate()
        .map(|(i, c)| {
            c.submit(&RemoteTxn::new().add(Key::from(i as u64), 1)).expect("submit")
        })
        .collect();
    for (client, id) in clients.iter_mut().zip(ids) {
        assert!(client.wait(id).expect("wait").is_committed());
    }
    assert_eq!(server.net_stats().conns_accepted, 32);
    server.shutdown();
}
