//! Cross-crate integration tests running the full RUBiS application on the
//! different engines and checking application-level invariants.

use doppel_common::{DoppelConfig, Engine, Key, Table, Value};
use doppel_db::DoppelDb;
use doppel_occ::OccEngine;
use doppel_rubis::schema::keys;
use doppel_rubis::{RubisScale, RubisWorkload, TxnStyle};
use doppel_twopl::TwoplEngine;
use doppel_workloads::driver::{BenchOptions, Driver};
use std::time::Duration;

fn small_scale() -> RubisScale {
    RubisScale { users: 200, items: 20, categories: 4, regions: 3 }
}

/// Application invariants that must hold after any run, on any engine:
///
/// 1. every item's `numBids` counter equals the number of bid rows for that
///    item;
/// 2. every item's `maxBid` equals the maximum bid amount among its bid rows
///    (or its initial price if it never received a higher bid);
/// 3. every user rating equals the sum of the ratings of the comments about
///    that user.
#[allow(clippy::type_complexity)] // a named alias for the scan callback would obscure more than it helps
fn check_invariants(engine: &dyn Engine, store_scan: &dyn Fn(&mut dyn FnMut(Key, Value))) {
    use std::collections::HashMap;
    let mut bids_per_item: HashMap<u64, (i64, i64)> = HashMap::new(); // item -> (count, max amount)
    let mut rating_per_user: HashMap<u64, i64> = HashMap::new();
    store_scan(&mut |key, value| match key.table() {
        Table::RubisBid => {
            if let Some(bid) = doppel_rubis::rows::decode::<doppel_rubis::BidRow>(Some(&value)) {
                let entry = bids_per_item.entry(bid.item).or_insert((0, i64::MIN));
                entry.0 += 1;
                entry.1 = entry.1.max(bid.amount);
            }
        }
        Table::RubisComment => {
            if let Some(c) = doppel_rubis::rows::decode::<doppel_rubis::CommentRow>(Some(&value)) {
                *rating_per_user.entry(c.about_user).or_insert(0) += c.rating;
            }
        }
        _ => {}
    });

    for (item, (count, max_amount)) in &bids_per_item {
        let num_bids = engine
            .global_get(keys::num_bids(*item))
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        assert_eq!(num_bids, *count, "item {item}: numBids vs bid rows");
        let max_bid = engine
            .global_get(keys::max_bid(*item))
            .and_then(|v| v.as_int())
            .unwrap_or(i64::MIN);
        assert!(
            max_bid >= *max_amount,
            "item {item}: maxBid {max_bid} is below the largest bid row {max_amount}"
        );
    }
    for (user, rating) in &rating_per_user {
        let stored = engine
            .global_get(keys::user_rating(*user))
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        assert_eq!(stored, *rating, "user {user}: rating vs sum of comment ratings");
    }
}

#[test]
fn rubis_c_invariants_hold_on_occ() {
    let engine = OccEngine::new(2, 256);
    let workload = RubisWorkload::contended(small_scale(), 1.6, TxnStyle::Doppel);
    let result = Driver::run(&engine, &workload, &BenchOptions::new(2, Duration::from_millis(250)));
    assert!(result.committed > 0);
    check_invariants(&engine, &|f| {
        engine.store().for_each(|k, r| {
            if let Some(v) = r.read_unlocked() {
                f(*k, v);
            }
        })
    });
}

#[test]
fn rubis_c_invariants_hold_on_2pl() {
    let engine = TwoplEngine::new(2, 256);
    let workload = RubisWorkload::contended(small_scale(), 1.6, TxnStyle::Doppel);
    let result = Driver::run(&engine, &workload, &BenchOptions::new(2, Duration::from_millis(250)));
    assert!(result.committed > 0);
    check_invariants(&engine, &|f| {
        engine.store().for_each(|k, r| {
            if let Some(v) = r.read_unlocked() {
                f(*k, v);
            }
        })
    });
}

#[test]
fn rubis_c_invariants_hold_on_doppel_with_splitting() {
    let cfg = DoppelConfig {
        workers: 2,
        phase_len: Duration::from_millis(4),
        split_min_conflicts: 2,
        split_conflict_fraction: 0.0,
        unsplit_write_fraction: 0.0,
        ..DoppelConfig::default()
    };
    let engine = DoppelDb::start(cfg);
    // Very skewed contended mix so auction metadata definitely gets split.
    let workload = RubisWorkload::contended(small_scale(), 1.9, TxnStyle::Doppel);
    let result = Driver::run(&engine, &workload, &BenchOptions::new(2, Duration::from_millis(400)));
    assert!(result.committed > 0);
    check_invariants(&engine, &|f| {
        engine.shared().store.for_each(|k, r| {
            if let Some(v) = r.read_unlocked() {
                f(*k, v);
            }
        })
    });
}

#[test]
fn rubis_b_read_heavy_mix_commits_reads_and_writes() {
    let engine = OccEngine::new(2, 256);
    let workload = RubisWorkload::bidding(small_scale(), TxnStyle::Doppel);
    let result = Driver::run(&engine, &workload, &BenchOptions::new(2, Duration::from_millis(250)));
    assert!(result.committed > 0);
    assert!(
        result.read_latency.count > result.write_latency.count,
        "RUBiS-B is read-dominated"
    );
}

#[test]
fn classic_and_doppel_styles_produce_equivalent_aggregates_single_worker() {
    // With a single worker the two transaction styles must produce identical
    // auction aggregates for the same deterministic bid stream.
    let mut finals = Vec::new();
    for style in [TxnStyle::Classic, TxnStyle::Doppel] {
        let engine = OccEngine::new(1, 128);
        doppel_rubis::RubisData::new(small_scale()).load(&engine);
        let mut handle = engine.handle(0);
        for i in 0..500u64 {
            let bid = std::sync::Arc::new(doppel_rubis::txns::StoreBid {
                bid_id: 10_000 + i,
                bidder: i % 200,
                item: i % 20,
                amount: 1_000 + ((i * 7919) % 5_000) as i64,
                now: i as i64,
                style,
            });
            assert!(handle.execute(bid).is_committed());
        }
        let aggregates: Vec<(i64, i64)> = (0..20u64)
            .map(|item| {
                (
                    engine.global_get(keys::max_bid(item)).unwrap().as_int().unwrap(),
                    engine.global_get(keys::num_bids(item)).unwrap().as_int().unwrap(),
                )
            })
            .collect();
        finals.push(aggregates);
    }
    assert_eq!(finals[0], finals[1], "classic and Doppel StoreBid disagree on aggregates");
}
